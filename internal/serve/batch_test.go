package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"disjunct/internal/budget"
)

// postBatch sends one batch and returns the status and raw body.
func postBatch(t *testing.T, ts *httptest.Server, req BatchRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func decodeBatchResponse(t *testing.T, data []byte) BatchResponse {
	t.Helper()
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatalf("200 body does not parse as BatchResponse: %v\n%s", err, data)
	}
	return br
}

// batchTestDBs pairs databases with query mixes that exercise all three
// routes: fixpoint fast paths (definite DBs / Horn fragments), warm
// sessions (positive disjunctive under the minimal-model family), and
// the fresh path (semantics outside the warm set).
var batchTestDBs = []struct {
	name string
	db   string
	qs   []BatchQuery
}{
	{
		name: "definite",
		db:   "a. b :- a. c | d :- b.",
		qs: []BatchQuery{
			{Semantics: "CWA", Literal: "a"},
			{Semantics: "CWA", Literal: "b"},
			{Semantics: "GCWA", Literal: "-c"},
			{Semantics: "GCWA", Literal: "-d"},
			{Semantics: "GCWA", Kind: "model"},
		},
	},
	{
		name: "positive-disjunctive",
		db:   "a | b. b | c. d :- a.",
		qs: []BatchQuery{
			{Semantics: "GCWA", Literal: "-a"},
			{Semantics: "GCWA", Literal: "-d"},
			{Semantics: "EGCWA", Literal: "-b"},
			{Semantics: "ECWA", Literal: "-c"},
			{Semantics: "CIRC", Formula: "a | c"},
			{Semantics: "PWS", Literal: "b"},
			{Semantics: "GCWA", Kind: "model"},
		},
	},
	{
		name: "normal",
		db:   "a :- not b. b :- not a. c.",
		qs: []BatchQuery{
			{Semantics: "DSM", Literal: "c"},
			{Semantics: "DSM", Literal: "a"},
			{Semantics: "DSM", Literal: "-b"},
			{Semantics: "DSM", Kind: "model"},
		},
	},
}

// runBatchVsSequential asserts that a batch produces, query for query,
// the same verdicts and the same NP-call totals as the identical
// queries issued one at a time against an identically configured fresh
// server.
func runBatchVsSequential(t *testing.T, cfg Config) {
	t.Helper()
	for _, tc := range batchTestDBs {
		// Sequential reference on its own server: a warm manager's memo
		// and engine state must not leak between the two runs.
		seqSrv := New(cfg)
		seqTS := httptest.NewServer(seqSrv.Handler())
		type ref struct {
			status int
			qr     QueryResponse
		}
		refs := make([]ref, len(tc.qs))
		var seqNP int64
		for i, q := range tc.qs {
			path, req := "/v1/model", QueryRequest{Semantics: q.Semantics, DB: tc.db}
			switch {
			case q.Literal != "":
				path, req.Literal = "/v1/infer/literal", q.Literal
			case q.Formula != "":
				path, req.Formula = "/v1/infer/formula", q.Formula
			}
			status, body := post(t, seqTS, path, req)
			if status != http.StatusOK {
				t.Fatalf("%s seq query %d: status %d body %s", tc.name, i, status, body)
			}
			refs[i] = ref{status, decodeQueryResponse(t, body)}
			seqNP += refs[i].qr.Counters.NPCalls
		}
		seqTS.Close()

		batchSrv := New(cfg)
		batchTS := httptest.NewServer(batchSrv.Handler())
		status, body := postBatch(t, batchTS, BatchRequest{DB: tc.db, Queries: tc.qs})
		if status != http.StatusOK {
			t.Fatalf("%s batch: status %d body %s", tc.name, status, body)
		}
		br := decodeBatchResponse(t, body)
		if br.Queries != len(tc.qs) || len(br.Results) != len(tc.qs) {
			t.Fatalf("%s: batch reports %d/%d results for %d queries", tc.name, br.Queries, len(br.Results), len(tc.qs))
		}
		var batchNP int64
		for i, item := range br.Results {
			if item.Error != nil {
				t.Fatalf("%s query %d: unexpected error entry %+v", tc.name, i, *item.Error)
			}
			if item.Response == nil {
				t.Fatalf("%s query %d: neither response nor error", tc.name, i)
			}
			if item.Response.Incomplete {
				t.Fatalf("%s query %d: unexpectedly incomplete (%s)", tc.name, i, item.Response.CauseCode)
			}
			if item.Response.Holds != refs[i].qr.Holds {
				t.Fatalf("%s query %d (%s): batch %v, sequential %v",
					tc.name, i, tc.qs[i].Semantics, item.Response.Holds, refs[i].qr.Holds)
			}
			batchNP += item.Response.Counters.NPCalls
		}
		if batchNP != seqNP {
			t.Fatalf("%s: batch NP total %d != sequential %d", tc.name, batchNP, seqNP)
		}
		if br.Completed != len(tc.qs) || br.Errored != 0 || br.Incomplete != 0 {
			t.Fatalf("%s: counts completed=%d incomplete=%d errored=%d", tc.name, br.Completed, br.Incomplete, br.Errored)
		}
		batchTS.Close()
	}
}

func TestBatchMatchesSequentialFresh(t *testing.T) {
	runBatchVsSequential(t, Config{})
}

func TestBatchMatchesSequentialSessions(t *testing.T) {
	runBatchVsSequential(t, Config{Sessions: true})
}

// TestBatchPathsPartition: with sessions on, a batch routes queries per
// fragment class. A disjunctive DB splits between warm sessions and the
// fresh path; a definite DB answers entirely on the fixpoint fast path
// with zero NP calls.
func TestBatchPathsPartition(t *testing.T) {
	srv := New(Config{Sessions: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := postBatch(t, ts, BatchRequest{
		DB: "a | b. b | c. d :- a.",
		Queries: []BatchQuery{
			{Semantics: "GCWA", Literal: "-a"}, // warm session
			{Semantics: "GCWA", Literal: "-d"}, // warm session, same checkout
			{Semantics: "DSM", Literal: "b"},   // fresh (DSM not warm-eligible)
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	br := decodeBatchResponse(t, body)
	if br.Paths["session"] != 2 || br.Paths["fresh"] != 1 {
		t.Fatalf("disjunctive batch: want paths session:2 fresh:1, got %v", br.Paths)
	}

	status, body = postBatch(t, ts, BatchRequest{
		Semantics: "GCWA",
		DB:        "a. b :- a. c :- b.",
		Queries:   []BatchQuery{{Literal: "a"}, {Literal: "c"}, {Literal: "-a"}, {Kind: "model"}},
	})
	if status != http.StatusOK {
		t.Fatalf("definite batch: status %d body %s", status, body)
	}
	br = decodeBatchResponse(t, body)
	if br.Paths["fast"] != 4 {
		t.Fatalf("definite batch: want paths fast:4, got %v", br.Paths)
	}
	for i, item := range br.Results {
		if item.Response == nil || item.Response.Counters.NPCalls != 0 {
			t.Fatalf("definite batch query %d: want zero NP calls, got %+v", i, item)
		}
	}

	h := healthOf(t, ts)
	if got := h.Stats["batch_requests"]; got != 2 {
		t.Fatalf("batch_requests = %d, want 2", got)
	}
	if got := h.Stats["batch_queries"]; got != 7 {
		t.Fatalf("batch_queries = %d, want 7", got)
	}
}

// healthOf decodes /healthz.
func healthOf(t *testing.T, ts *httptest.Server) Health {
	t.Helper()
	h, err := FetchHealth(ts.Client(), ts.URL)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	return h
}

// TestBatchPerQueryErrors: malformed queries become typed per-item
// error entries; valid neighbors still answer. The batch itself is a
// 200.
func TestBatchPerQueryErrors(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := postBatch(t, ts, BatchRequest{
		Semantics: "GCWA",
		DB:        "a | b. :- a, b.",
		Queries: []BatchQuery{
			{Literal: "-a"},                   // valid (batch default semantics)
			{Semantics: "NOPE", Literal: "a"}, // unknown semantics
			{Literal: "zzz"},                  // atom not in vocabulary
			{Kind: "frobnicate"},              // bad kind
			{Semantics: "PERF", Literal: "a"}, // PERF is undefined with integrity clauses
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	br := decodeBatchResponse(t, body)
	wantErrors := map[int]string{
		1: ReasonUnknownSemantics,
		2: ReasonBadRequest,
		3: ReasonBadRequest,
		4: ReasonUnsupported,
	}
	for i, item := range br.Results {
		want, isErr := wantErrors[i]
		if isErr {
			if item.Error == nil || item.Error.Error != want {
				t.Fatalf("query %d: want error %q, got %+v", i, want, item)
			}
			continue
		}
		if item.Response == nil || item.Response.Incomplete {
			t.Fatalf("query %d: want a complete verdict, got %+v", i, item)
		}
	}
	if br.Errored != len(wantErrors) || br.Completed != len(br.Results)-len(wantErrors) {
		t.Fatalf("counts completed=%d errored=%d, want %d/%d",
			br.Completed, br.Errored, len(br.Results)-len(wantErrors), len(wantErrors))
	}
}

// TestBatchRejections: oversized batches, empty batches, bad bodies and
// bad databases are typed 400s; a draining server sheds with 503.
func TestBatchRejections(t *testing.T) {
	srv := New(Config{BatchMaxQueries: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := postBatch(t, ts, BatchRequest{DB: "a.", Queries: []BatchQuery{
		{Semantics: "CWA", Literal: "a"},
		{Semantics: "CWA", Literal: "-a"},
		{Semantics: "CWA", Kind: "model"},
	}})
	if er := decodeErrorResponse(t, body); status != http.StatusBadRequest || er.Error != ReasonBatchTooLarge {
		t.Fatalf("oversized: status=%d error=%q", status, er.Error)
	}
	status, body = postBatch(t, ts, BatchRequest{DB: "a."})
	if er := decodeErrorResponse(t, body); status != http.StatusBadRequest || er.Error != ReasonBadRequest {
		t.Fatalf("empty: status=%d error=%q", status, er.Error)
	}
	status, body = postBatch(t, ts, BatchRequest{DB: "a |", Queries: []BatchQuery{{Semantics: "CWA", Literal: "a"}}})
	if er := decodeErrorResponse(t, body); status != http.StatusBadRequest || er.Error != ReasonBadRequest {
		t.Fatalf("bad db: status=%d error=%q", status, er.Error)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	status, body = postBatch(t, ts, BatchRequest{DB: "a.", Queries: []BatchQuery{{Semantics: "CWA", Literal: "a"}}})
	if er := decodeErrorResponse(t, body); status != http.StatusServiceUnavailable || er.Error != ShedDraining {
		t.Fatalf("draining: status=%d error=%q", status, er.Error)
	}
}

// TestBatchBudgetTripIsPerQuery: one under-budgeted batch member trips
// alone; siblings in the same warm group still complete, exactly as in
// the session-layer contract.
func TestBatchBudgetTripIsPerQuery(t *testing.T) {
	srv := New(Config{Sessions: true, Ceilings: budget.Limits{NPCalls: 2}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The ceiling applies to every query; the first GCWA solve on this
	// DB needs more than 2 NP calls, later memo-assisted ones need
	// fewer. What matters here: an interrupted member yields a typed
	// incomplete entry, not a batch failure, and complete members agree
	// with an unbudgeted reference.
	status, body := postBatch(t, ts, BatchRequest{
		Semantics: "GCWA",
		DB:        "a | b. b | c. c | d. d | e.",
		Queries: []BatchQuery{
			{Literal: "-a"}, {Literal: "-b"}, {Literal: "-c"}, {Literal: "-d"}, {Literal: "-e"},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	br := decodeBatchResponse(t, body)
	refSrv := New(Config{Sessions: true})
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	sawIncomplete := false
	for i, item := range br.Results {
		if item.Response == nil {
			t.Fatalf("query %d: %+v", i, item)
		}
		if item.Response.Incomplete {
			sawIncomplete = true
			if !KnownCauseCodes[item.Response.CauseCode] {
				t.Fatalf("query %d: untyped cause %q", i, item.Response.CauseCode)
			}
			continue
		}
		lits := []string{"-a", "-b", "-c", "-d", "-e"}
		_, refBody := post(t, refTS, "/v1/infer/literal", QueryRequest{
			Semantics: "GCWA", DB: "a | b. b | c. c | d. d | e.", Literal: lits[i],
		})
		ref := decodeQueryResponse(t, refBody)
		if item.Response.Holds != ref.Holds {
			t.Fatalf("query %d: budgeted-batch verdict %v, reference %v", i, item.Response.Holds, ref.Holds)
		}
	}
	if !sawIncomplete {
		t.Fatalf("ceiling of 2 NP calls tripped nothing; test is vacuous")
	}
	if br.Incomplete == 0 {
		t.Fatalf("batch counts don't reflect the trip: %+v", br)
	}
}
