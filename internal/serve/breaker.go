package serve

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-semantics circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive oracle-path failures that
	// opens the breaker. ≤ 0 disables circuit breaking.
	Threshold int
	// Cooldown is how long an open breaker sheds before letting one
	// probe through (half-open).
	Cooldown time.Duration
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a circuit breaker guarding one semantics' oracle path.
// Failures are infrastructure failures only (transient-exhausted
// solver faults, injected cancels) — a client whose own budget trips
// is served correctly and must not poison the breaker for everyone
// else. While open, requests shed instantly with ShedBreakerOpen
// (sheds fast: no queue slot, no solve work); after Cooldown one probe
// is admitted, and its outcome decides between closing and re-opening.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg, now: time.Now}
}

// allow reports whether a request may proceed. When it returns false
// the request is shed with ShedBreakerOpen and retryAfter estimates
// when the next probe slot opens. probe is true when this request
// claimed the single half-open probe slot; the caller must then either
// record its outcome or return the slot with cancelProbe — dropping it
// would shed every later request forever.
func (b *breaker) allow() (ok, probe bool, retryAfter time.Duration) {
	if b == nil || b.cfg.Threshold <= 0 {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false, 0
	case breakerOpen:
		if wait := b.cfg.Cooldown - b.now().Sub(b.openedAt); wait > 0 {
			return false, false, wait
		}
		// Cooldown over: become half-open and admit this request as
		// the probe.
		b.state = breakerHalfOpen
		b.probing = true
		return true, true, 0
	default: // half-open
		if b.probing {
			// Exactly one probe at a time; everyone else sheds until
			// it reports back.
			return false, false, b.cfg.Cooldown
		}
		b.probing = true
		return true, true, 0
	}
}

// cancelProbe returns an unused probe slot claimed by allow. It is
// called when a probe-carrying request is shed before reaching the
// oracle path (admission queue full, queue-wait timeout, client gone,
// drain): the probe saw neither success nor failure, so the breaker
// stays half-open and the next allowed request becomes the probe.
func (b *breaker) cancelProbe() {
	if b == nil || b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen && b.probing {
		b.probing = false
	}
}

// record reports the outcome of an admitted request. failure means an
// infrastructure failure (see breakerFailure); anything else counts as
// success.
func (b *breaker) record(failure bool) {
	if b == nil || b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if failure {
			// Probe failed: reopen and restart the cooldown.
			b.state = breakerOpen
			b.openedAt = b.now()
		} else {
			b.state = breakerClosed
			b.failures = 0
		}
	case breakerClosed:
		if !failure {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	case breakerOpen:
		// A request admitted before the breaker opened finished late;
		// its outcome is stale — ignore it.
	}
}

// snapshot returns the state for health reporting.
func (b *breaker) snapshot() (state string, failures int) {
	if b == nil {
		return breakerClosed.String(), 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.failures
}
