package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"disjunct/internal/budget"
)

// newSessionServer builds a sessions-enabled server and its test
// listener.
func newSessionServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Sessions = true
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestServeSessionVerdictsMatchLibrary drives every session route
// through the HTTP layer — fragment fast path, warm session, warm
// memo, and the fresh fallback — and checks each verdict against the
// direct library call plus the Path/counter contract of the route.
func TestServeSessionVerdictsMatchLibrary(t *testing.T) {
	srv, ts := newSessionServer(t, Config{})

	cases := []struct {
		name         string
		sem, db, lit string
		wantPath     string
	}{
		// Definite database: fragment fast path, zero NP calls.
		{"fast-definite", "GCWA", "a. b :- a. c :- b.", "c", "fast"},
		// Stratified normal database under the stable semantics.
		{"fast-strat", "DSM", "a :- not b. c :- a.", "a", "fast"},
		// General disjunctive database: warm incremental session.
		{"warm", "GCWA", "a | b. b | c.", "-a", "session"},
		{"warm-circ", "CIRC", "a | b. a | c.", "-b", "session"},
		// PDSM is never handled by the session layer: fresh path.
		{"fresh-pdsm", "PDSM", "a | b.", "-a", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := QueryRequest{Semantics: tc.sem, DB: tc.db, Literal: tc.lit}
			want := directVerdict(t, tc.sem, tc.db, tc.lit)
			for round := 0; round < 2; round++ {
				status, body := post(t, ts, "/v1/infer/literal", req)
				if status != http.StatusOK {
					t.Fatalf("round %d: status %d body %s", round, status, body)
				}
				qr := decodeQueryResponse(t, body)
				if qr.Incomplete || qr.Holds != want {
					t.Fatalf("round %d: served %s/%v, direct library call %v", round, qr.Verdict, qr.Holds, want)
				}
				if qr.Path != tc.wantPath {
					t.Fatalf("round %d: path %q, want %q", round, qr.Path, tc.wantPath)
				}
				if qr.Path == "fast" && qr.Counters.NPCalls != 0 {
					t.Fatalf("fast path consumed %d NP calls", qr.Counters.NPCalls)
				}
				// A repeat of a session-handled query answers from the
				// memo: zero oracle work.
				if round == 1 && qr.Path != "" && qr.Counters.NPCalls != 0 {
					t.Fatalf("repeat consumed %d NP calls, want 0 (memo)", qr.Counters.NPCalls)
				}
			}
		})
	}

	st := srv.sessions.Stats()
	if st.FastQueries == 0 || st.WarmQueries == 0 || st.MemoHits == 0 {
		t.Fatalf("route coverage missing: %+v", st)
	}
	// Round two of every case hit the compiled-artifact cache.
	if st.CompiledHits == 0 {
		t.Fatalf("no compiled-artifact hits: %+v", st)
	}
	if st.ActiveCheckouts != 0 {
		t.Fatalf("session checkout leak: %d outstanding", st.ActiveCheckouts)
	}
}

// TestServeCoalescesIdenticalConcurrentRequests orders a leader and a
// follower deterministically through the flight hook: the leader parks
// after joining until the follower has joined too, then solves once;
// the follower must reuse the leader's complete response.
func TestServeCoalescesIdenticalConcurrentRequests(t *testing.T) {
	srv, ts := newSessionServer(t, Config{MaxConcurrent: 2})
	leaderIn := make(chan struct{})
	followerIn := make(chan struct{})
	srv.flightHook = func(leader bool) {
		if leader {
			close(leaderIn)
			<-followerIn
		} else {
			close(followerIn)
		}
	}

	req := QueryRequest{Semantics: "CIRC", DB: "a | b. b | c. c | a.", Literal: "-a"}
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, body := post(t, ts, "/v1/infer/literal", req)
			results <- result{status, body}
		}()
	}

	want := directVerdict(t, req.Semantics, req.DB, req.Literal)
	paths := map[string]int{}
	for i := 0; i < 2; i++ {
		select {
		case res := <-results:
			if res.status != http.StatusOK {
				t.Fatalf("status %d body %s", res.status, res.body)
			}
			qr := decodeQueryResponse(t, res.body)
			if qr.Incomplete || qr.Holds != want {
				t.Fatalf("verdict %s/%v, want complete %v", qr.Verdict, qr.Holds, want)
			}
			paths[qr.Path]++
		case <-time.After(10 * time.Second):
			t.Fatal("coalesced pair never completed")
		}
	}
	if paths["coalesced"] != 1 {
		t.Fatalf("paths %v, want exactly one coalesced follower", paths)
	}
	if got := srv.stats.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced stat = %d, want 1", got)
	}
}

// TestServeCoalesceNeverSharesIncomplete: a leader whose verdict is
// incomplete (here: a 1-NP-call ceiling trips its warm solve) must not
// hand that verdict to the follower — the follower re-executes and
// reports its own typed outcome.
func TestServeCoalesceNeverSharesIncomplete(t *testing.T) {
	srv, ts := newSessionServer(t, Config{MaxConcurrent: 2, Ceilings: budget.Limits{NPCalls: 1}})
	leaderIn := make(chan struct{})
	followerIn := make(chan struct{})
	srv.flightHook = func(leader bool) {
		if leader {
			close(leaderIn)
			<-followerIn
		} else {
			close(followerIn)
		}
	}

	req := QueryRequest{Semantics: "GCWA", DB: "a | b. b | c. c | a.", Literal: "-a"}
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, body := post(t, ts, "/v1/infer/literal", req)
			results <- result{status, body}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case res := <-results:
			if res.status != http.StatusOK {
				t.Fatalf("status %d body %s", res.status, res.body)
			}
			qr := decodeQueryResponse(t, res.body)
			if !qr.Incomplete {
				t.Fatalf("complete verdict under a 1-NP-call ceiling: %s", res.body)
			}
			if qr.Path == "coalesced" {
				t.Fatalf("incomplete verdict was shared: %s", res.body)
			}
			if !KnownCauseCodes[qr.CauseCode] {
				t.Fatalf("cause %q outside the taxonomy", qr.CauseCode)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("pair never completed")
		}
	}
	if got := srv.stats.coalesced.Load(); got != 0 {
		t.Fatalf("coalesced stat = %d, want 0", got)
	}
}

// TestServeSessionHealthz: the health document carries the session
// section with the cache and route counters the smoke harness gates
// on.
func TestServeSessionHealthz(t *testing.T) {
	_, ts := newSessionServer(t, Config{})
	req := QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"}
	for i := 0; i < 2; i++ {
		if status, body := post(t, ts, "/v1/infer/literal", req); status != http.StatusOK {
			t.Fatalf("query %d: status %d body %s", i, status, body)
		}
	}
	h, err := FetchHealth(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sessions == nil {
		t.Fatal("healthz missing sessions section on a sessions-enabled server")
	}
	for _, key := range []string{
		"compiled_hits", "compiled_misses", "compiled_bytes", "compiled_entries",
		"fast_queries", "warm_queries", "memo_hits", "checkouts", "coalesced_is_in_stats",
	} {
		if key == "coalesced_is_in_stats" {
			if _, ok := h.Stats["coalesced"]; !ok {
				t.Fatal("healthz stats missing coalesced counter")
			}
			continue
		}
		if _, ok := h.Sessions[key]; !ok {
			t.Fatalf("healthz sessions missing %q: %v", key, h.Sessions)
		}
	}
	if h.Sessions["compiled_hits"] == 0 || h.Sessions["warm_queries"] == 0 || h.Sessions["memo_hits"] == 0 {
		t.Fatalf("session counters not advancing: %v", h.Sessions)
	}
	// A sessions-off server must not report the section.
	plain := New(Config{})
	if h := plain.health(); h.Sessions != nil {
		t.Fatal("sessions-off server reports a sessions section")
	}
}

// TestServeSessionDrain: a drain on a sessions-enabled server finishes
// in-flight warm queries with complete verdicts and leaves no session
// checked out.
func TestServeSessionDrain(t *testing.T) {
	srv, ts := newSessionServer(t, Config{MaxConcurrent: 2, DrainTimeout: 10 * time.Second})
	hold := make(chan struct{})
	srv.testHook = func() { <-hold }

	req := QueryRequest{Semantics: "GCWA", DB: "a | b. b | c.", Literal: "-a"}
	done := make(chan QueryResponse, 1)
	go func() {
		status, body := post(t, ts, "/v1/infer/literal", req)
		if status != http.StatusOK {
			t.Errorf("in-flight request: status %d body %s", status, body)
		}
		done <- decodeQueryResponse(t, body)
	}()
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	waitFor(t, func() bool { return srv.Draining() })
	close(hold)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	qr := <-done
	if qr.Incomplete {
		t.Fatalf("in-flight warm query interrupted by clean drain: %+v", qr)
	}
	if want := directVerdict(t, req.Semantics, req.DB, req.Literal); qr.Holds != want {
		t.Fatalf("drained verdict %v, direct library call %v", qr.Holds, want)
	}
	if st := srv.sessions.Stats(); st.ActiveCheckouts != 0 {
		t.Fatalf("session checkout leak after drain: %+v", st)
	}
}

// TestServeSessionChaosTaxonomy reruns the chaos load with the session
// layer on: under seeded fault injection, every outcome must stay
// typed and every completed verdict — fast, warm, coalesced, or fresh
// — must match the direct library call.
func TestServeSessionChaosTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load run")
	}
	srv, ts := newSessionServer(t, Config{MaxConcurrent: 2, QueueDepth: 2, FaultRate: 0.05, FaultSeed: 43, RetryMax: 2})

	rep := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Rate:     400,
		Requests: 120,
		Workers:  8,
		Seed:     11,
		MaxAtoms: 5,
		Verify:   true,
		Limits:   LimitsJSON{DeadlineMS: 10000},
	})
	if rep.Untyped > 0 {
		t.Fatalf("untyped outcomes under chaos: %d\n%v", rep.Untyped, rep.UntypedNotes)
	}
	if rep.Divergent > 0 {
		t.Fatalf("session-served verdicts diverged from library: %d\n%v", rep.Divergent, rep.DivergeNotes)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
	if st := srv.sessions.Stats(); st.ActiveCheckouts != 0 {
		t.Fatalf("session checkout leak after chaos: %+v", st)
	}
}
