package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"disjunct/internal/keyspace"
	"disjunct/internal/session"
)

// exportHandoff GETs /v1/handoff/export with an optional ?ranges= and
// decodes the result.
func exportHandoff(t *testing.T, baseURL, rawRanges string) session.Handoff {
	t.Helper()
	url := baseURL + "/v1/handoff/export"
	if rawRanges != "" {
		url += "?ranges=" + rawRanges
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export %q: status %d", rawRanges, resp.StatusCode)
	}
	var h session.Handoff
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("export decode: %v", err)
	}
	return h
}

// TestHandoffExportRanges is the warm-join slicing contract: a ?ranges=
// export returns exactly the artifacts and verdicts whose raw
// fingerprint hashes into the slice, and a slice plus its complement
// partition the full export with nothing lost or duplicated.
func TestHandoffExportRanges(t *testing.T) {
	_, ts := newSessionServer(t, Config{})

	// Structurally distinct disjunctive databases: distinct raw
	// fingerprints, so the keyspace actually spreads.
	dbs := []string{
		"a | b.",
		"a | b. c | d.",
		"a | b. c | d. e | f.",
		"a | b. c.",
		"a | b. c. d.",
	}
	for _, d := range dbs {
		status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: d, Literal: "-a"})
		if status != http.StatusOK {
			t.Fatalf("warm query on %q: status %d body %s", d, status, body)
		}
	}

	full := exportHandoff(t, ts.URL, "")
	if len(full.Artifacts) < len(dbs) {
		t.Fatalf("full export has %d artifacts for %d databases", len(full.Artifacts), len(dbs))
	}
	if len(full.Verdicts) == 0 {
		t.Fatal("full export has no verdict memos")
	}

	// A one-key arc around the first artifact's hash and its exact
	// complement must partition the export.
	h0 := keyspace.HashKey(full.Artifacts[0].Raw)
	slice := keyspace.Ranges{{Lo: h0 - 1, Hi: h0}}
	rest := keyspace.Ranges{{Lo: h0, Hi: h0 - 1}}

	in := exportHandoff(t, ts.URL, slice.String())
	out := exportHandoff(t, ts.URL, rest.String())
	if len(in.Artifacts)+len(out.Artifacts) != len(full.Artifacts) {
		t.Fatalf("slice (%d) + complement (%d) ≠ full (%d) artifacts",
			len(in.Artifacts), len(out.Artifacts), len(full.Artifacts))
	}
	if len(in.Verdicts)+len(out.Verdicts) != len(full.Verdicts) {
		t.Fatalf("slice (%d) + complement (%d) ≠ full (%d) verdicts",
			len(in.Verdicts), len(out.Verdicts), len(full.Verdicts))
	}
	if len(in.Artifacts) == 0 {
		t.Fatalf("slice around %x returned no artifacts", h0)
	}
	for _, a := range in.Artifacts {
		if !slice.ContainsKey(a.Raw) {
			t.Fatalf("artifact %x leaked into the slice", keyspace.HashKey(a.Raw))
		}
	}
	for _, v := range in.Verdicts {
		if !slice.ContainsKey(v.Raw) {
			t.Fatalf("verdict %x leaked into the slice", keyspace.HashKey(v.Raw))
		}
	}
	for _, a := range out.Artifacts {
		if slice.ContainsKey(a.Raw) {
			t.Fatalf("artifact %x missing from its slice", keyspace.HashKey(a.Raw))
		}
	}
}

// TestHandoffExportBadRanges pins the typed-400 contract: a malformed
// slice must be refused, never treated as "no filter" — exporting the
// wrong slice would silently break the join's zero-cold-compile gate.
func TestHandoffExportBadRanges(t *testing.T) {
	_, ts := newSessionServer(t, Config{})
	for _, bad := range []string{"zz", "1-2-3", "g-1", "1-", ","} {
		resp, err := http.Get(ts.URL + "/v1/handoff/export?ranges=" + bad)
		if err != nil {
			t.Fatalf("export ranges=%q: %v", bad, err)
		}
		var er ErrorResponse
		decErr := json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("export ranges=%q: status %d, want 400", bad, resp.StatusCode)
		}
		if decErr != nil || er.Error != ReasonBadRequest {
			t.Fatalf("export ranges=%q: error %q (decode %v), want %q", bad, er.Error, decErr, ReasonBadRequest)
		}
	}
}
