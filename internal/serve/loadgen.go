package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// Loadgen: an open-loop, seeded workload driver for the serving
// layer. It offers requests at a fixed rate regardless of how the
// server responds — which is exactly what creates overload — and
// classifies every terminal outcome into the typed taxonomy:
// completed (verdict cross-checked against a direct library call on
// the same input), incomplete (typed budget cause), shed (typed
// 429/503), or rejected (typed 422 for genuinely inapplicable
// inputs). Anything else — unparseable body, unknown cause code,
// transport error — is untyped, and the smoke harness hard-fails on a
// single occurrence.

// LoadConfig shapes one load run.
type LoadConfig struct {
	BaseURL string // e.g. "http://127.0.0.1:8091"
	// FallbackURLs are replica routers tried when the current one dies
	// at the transport level (connection refused/reset — the request
	// never produced a response). The client is sticky: it stays on one
	// router until that router fails, then moves to the next and stays
	// there — mirroring how a load balancer or DNS failover behaves,
	// and keeping the per-router healthz counters interpretable.
	FallbackURLs []string
	Rate         float64       // offered requests/second
	Requests     int           // total requests to offer
	Workers      int           // concurrent HTTP clients (default 4×queue)
	Seed         int64         // workload seed (db shapes, kinds, semantics)
	MaxAtoms     int           // vocabulary bound for generated dbs (default 5)
	Timeout      time.Duration // per-request client timeout (default 30s)
	Limits       LimitsJSON    // client budget ask sent with each request
	// Semantics restricts the mix; default is every described
	// semantics except the stratification-gated ones (whose 422s are
	// data-dependent noise for a load sweep).
	Semantics []string
	// Verify cross-checks every completed verdict against a direct
	// library call on the same (db, query) — the byte-identity
	// invariant of the acceptance criteria.
	Verify bool
	// HotDBs, when > 0, draws every job's database from a fixed pool
	// of this many pre-generated databases instead of a fresh database
	// per request — the repeat-DB workload that exercises the server's
	// warm session layer (compiled-DB cache, memo, coalescing).
	HotDBs int
	// RecordPath, when set, writes the run's completed verdicts to a
	// JSON file keyed by job index. genJobs is a pure function of
	// (Seed, Requests, MaxAtoms, HotDBs, Semantics), so a later run
	// with the same shape replays the identical workload and the index
	// identifies the identical query — the restart-replay contract.
	RecordPath string
	// ReplayPath, when set, loads a verdict file recorded by a previous
	// run of the same workload shape and counts any verdict that
	// differs on a query completed by both runs as Divergent. A file
	// recorded from a different workload shape is an untyped failure.
	ReplayPath string
}

// verdictLog is the record/replay file format.
type verdictLog struct {
	Seed     int64           `json:"seed"`
	Requests int             `json:"requests"`
	MaxAtoms int             `json:"max_atoms"`
	HotDBs   int             `json:"hot_dbs"`
	Verdicts []verdictLogRow `json:"verdicts"`
}

type verdictLogRow struct {
	Idx   int  `json:"idx"`
	Holds bool `json:"holds"`
}

// LoadReport is the outcome breakdown of one run.
type LoadReport struct {
	Offered    int `json:"offered"`
	Completed  int `json:"completed"`
	Incomplete int `json:"incomplete"`
	Shed429    int `json:"shed_429"`
	Shed503    int `json:"shed_503"`
	Rejected   int `json:"rejected"` // typed 422 (unsupported/not stratifiable)
	Untyped    int `json:"untyped"`  // ANY outcome outside the taxonomy
	Divergent  int `json:"divergent"`
	// RouterFailovers counts client-side switches to a fallback router
	// after a transport-level failure of the current one.
	RouterFailovers int            `json:"router_failovers,omitempty"`
	Replayed        int            `json:"replayed,omitempty"` // verdicts compared against a replay file
	ByCause         map[string]int `json:"by_cause"`
	ByShed          map[string]int `json:"by_shed"`
	Elapsed         time.Duration  `json:"elapsed_ns"`
	UntypedNotes    []string       `json:"untyped_notes,omitempty"` // first few diagnostics
	DivergeNotes    []string       `json:"diverge_notes,omitempty"`
}

// Clean reports whether the run satisfied the robustness contract:
// every request terminated typed and no completed verdict diverged.
func (r LoadReport) Clean() bool { return r.Untyped == 0 && r.Divergent == 0 }

func (r LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered=%d completed=%d incomplete=%d shed429=%d shed503=%d rejected=%d untyped=%d divergent=%d",
		r.Offered, r.Completed, r.Incomplete, r.Shed429, r.Shed503, r.Rejected, r.Untyped, r.Divergent)
	if len(r.ByCause) > 0 {
		keys := make([]string, 0, len(r.ByCause))
		for k := range r.ByCause {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "\n  causes:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, r.ByCause[k])
		}
	}
	return b.String()
}

// loadJob is one pre-generated request.
type loadJob struct {
	idx     int    // position in the deterministic workload
	kind    string // "literal" | "formula" | "model"
	sem     string
	dbText  string
	literal string
	formula string
	body    []byte
}

// genJobs pre-generates the whole workload serially so it is a pure
// function of the seed, independent of worker scheduling.
func genJobs(cfg LoadConfig) []loadJob {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sems := cfg.Semantics
	if len(sems) == 0 {
		for _, info := range core.Infos() {
			if !info.Stratified {
				sems = append(sems, info.Name)
			}
		}
	}
	// Repeat-DB mode: a fixed pool cycling the generator classes, each
	// job drawing from it (and picking a semantics its class supports).
	type hotDB struct {
		d             *db.DB
		hasNeg, hasIC bool
	}
	var pool []hotDB
	if cfg.HotDBs > 0 {
		for len(pool) < cfg.HotDBs {
			n := 2 + rng.Intn(cfg.MaxAtoms-1)
			// Dense instances: the pool exists for the repeat-DB
			// throughput sweep, where per-query solve cost should
			// dominate transport overhead (the fresh-per-request mode
			// below keeps its small robustness-workload instances).
			cl := 2 + n/2 + rng.Intn(n)
			var g *db.DB
			switch len(pool) % 4 {
			case 0:
				g = gen.Random(rng, gen.Positive(n, cl))
			case 1:
				g = gen.Random(rng, gen.WithIntegrity(n, cl))
			case 2:
				g = gen.Random(rng, gen.NormalNoIC(n, cl))
			default:
				g = gen.Random(rng, gen.Normal(n, cl))
			}
			rt, err := db.Parse(g.String())
			if err != nil || rt.N() == 0 {
				continue
			}
			hasIC := false
			for _, cl := range rt.Clauses {
				if cl.IsIntegrity() {
					hasIC = true
					break
				}
			}
			pool = append(pool, hotDB{d: rt, hasNeg: rt.HasNegation(), hasIC: hasIC})
		}
	}
	jobs := make([]loadJob, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		var semName string
		var d *db.DB
		if pool != nil {
			h := pool[rng.Intn(len(pool))]
			compatible := make([]string, 0, len(sems))
			for _, s := range sems {
				info, _ := core.InfoFor(s)
				if (info.NoNegation && h.hasNeg) || (info.NoIC && h.hasIC) {
					continue
				}
				compatible = append(compatible, s)
			}
			if len(compatible) == 0 {
				// A caller-restricted mix with no fit: the 422s are typed.
				compatible = sems
			}
			semName, d = compatible[rng.Intn(len(compatible))], h.d
		} else {
			semName = sems[rng.Intn(len(sems))]
			info, _ := core.InfoFor(semName)
			n := 2 + rng.Intn(cfg.MaxAtoms-1)
			// The query is phrased against the textual form the server will
			// parse, so atoms must come from the round-tripped vocabulary
			// (a generated atom that appears in no clause is absent there).
			for {
				var g *db.DB
				switch {
				case info.NoNegation && info.NoIC:
					g = gen.Random(rng, gen.Positive(n, 1+rng.Intn(6)))
				case info.NoNegation:
					g = gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
				case info.NoIC:
					g = gen.Random(rng, gen.NormalNoIC(n, 1+rng.Intn(6)))
				default:
					g = gen.Random(rng, gen.Normal(n, 1+rng.Intn(6)))
				}
				rt, err := db.Parse(g.String())
				if err == nil && rt.N() > 0 {
					d = rt
					break
				}
			}
		}
		job := loadJob{idx: i, sem: semName, dbText: d.String()}
		atom := d.Voc.Name(logic.Atom(rng.Intn(d.N())))
		switch k := rng.Intn(10); {
		case k < 6:
			job.kind = "literal"
			if rng.Intn(2) == 0 {
				job.literal = "-" + atom
			} else {
				job.literal = atom
			}
		case k < 8:
			job.kind = "formula"
			other := d.Voc.Name(logic.Atom(rng.Intn(d.N())))
			job.formula = "~" + atom + " | " + other
		default:
			job.kind = "model"
		}
		body, _ := json.Marshal(QueryRequest{
			Semantics: job.sem,
			DB:        job.dbText,
			Literal:   job.literal,
			Formula:   job.formula,
			Limits:    cfg.Limits,
		})
		job.body = body
		jobs = append(jobs, job)
	}
	return jobs
}

// endpoint maps a job kind to its path.
func endpoint(kind string) string {
	switch kind {
	case "literal":
		return "/v1/infer/literal"
	case "formula":
		return "/v1/infer/formula"
	default:
		return "/v1/model"
	}
}

// referenceVerdict recomputes the job's query with a direct,
// unbudgeted, fault-free library call on the same database text the
// server parsed.
func referenceVerdict(job loadJob) (bool, error) {
	d, err := db.Parse(job.dbText)
	if err != nil {
		return false, err
	}
	sem, ok := core.New(job.sem, core.Options{Oracle: oracle.NewNP()})
	if !ok {
		return false, fmt.Errorf("semantics %q not registered", job.sem)
	}
	switch job.kind {
	case "literal":
		lit, err := parseLiteral(job.literal, d.Voc)
		if err != nil {
			return false, err
		}
		return sem.InferLiteral(d, lit)
	case "formula":
		f, err := logic.ParseFormula(job.formula, d.Voc)
		if err != nil {
			return false, err
		}
		return sem.InferFormula(d, f)
	default:
		return sem.HasModel(d)
	}
}

// RunLoad drives the workload against cfg.BaseURL and returns the
// typed breakdown.
func RunLoad(cfg LoadConfig) LoadReport {
	if cfg.MaxAtoms < 2 {
		cfg.MaxAtoms = 5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	jobs := genJobs(cfg)
	ch := make(chan loadJob, len(jobs))
	client := &http.Client{Timeout: cfg.Timeout}
	routers := newRouterSet(cfg.BaseURL, cfg.FallbackURLs)

	report := LoadReport{ByCause: map[string]int{}, ByShed: map[string]int{}}
	var mu sync.Mutex
	var completedVerdicts map[int]bool
	if cfg.RecordPath != "" || cfg.ReplayPath != "" {
		completedVerdicts = map[int]bool{}
	}
	note := func(list *[]string, format string, args ...any) {
		if len(*list) < 5 {
			*list = append(*list, fmt.Sprintf(format, args...))
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				kind, status, qr, er, err := routers.doRequest(client, job)
				mu.Lock()
				switch kind {
				case outcomeCompleted:
					report.Completed++
					if completedVerdicts != nil {
						completedVerdicts[job.idx] = qr.Holds
					}
					if cfg.Verify {
						want, refErr := referenceVerdict(job)
						if refErr != nil {
							report.Untyped++
							note(&report.UntypedNotes, "reference error for %s %s: %v", job.sem, job.kind, refErr)
						} else if want != qr.Holds {
							report.Divergent++
							note(&report.DivergeNotes, "%s %s on %q: served=%v direct=%v",
								job.sem, job.kind, job.literal+job.formula, qr.Holds, want)
						}
					}
				case outcomeIncomplete:
					report.Incomplete++
					report.ByCause[qr.CauseCode]++
				case outcomeShed429:
					report.Shed429++
					report.ByShed[er.Error]++
				case outcomeShed503:
					report.Shed503++
					report.ByShed[er.Error]++
				case outcomeRejected:
					report.Rejected++
				default:
					report.Untyped++
					note(&report.UntypedNotes, "status=%d err=%v sem=%s kind=%s", status, err, job.sem, job.kind)
				}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	next := start
	for _, job := range jobs {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		ch <- job // buffered to len(jobs): offering never blocks on slow service
		next = next.Add(interval)
	}
	close(ch)
	wg.Wait()
	report.Offered = len(jobs)
	report.Elapsed = time.Since(start)
	report.RouterFailovers = int(routers.failovers.Load())

	if cfg.ReplayPath != "" {
		replayCompare(cfg, jobs, completedVerdicts, &report, note)
	}
	if cfg.RecordPath != "" {
		if err := writeVerdictLog(cfg, completedVerdicts); err != nil {
			report.Untyped++
			note(&report.UntypedNotes, "record: %v", err)
		}
	}
	return report
}

// writeVerdictLog persists the run's completed verdicts for a later
// replay, sorted by job index for deterministic files.
func writeVerdictLog(cfg LoadConfig, verdicts map[int]bool) error {
	lg := verdictLog{Seed: cfg.Seed, Requests: cfg.Requests, MaxAtoms: cfg.MaxAtoms, HotDBs: cfg.HotDBs}
	idxs := make([]int, 0, len(verdicts))
	for i := range verdicts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		lg.Verdicts = append(lg.Verdicts, verdictLogRow{Idx: i, Holds: verdicts[i]})
	}
	data, err := json.MarshalIndent(lg, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.RecordPath, data, 0o644)
}

// replayCompare checks this run's completed verdicts against a
// recorded file: same workload shape required, and every query both
// runs completed must agree — SIGKILL-torn runs legitimately complete
// different subsets, so only the intersection is gated.
func replayCompare(cfg LoadConfig, jobs []loadJob, verdicts map[int]bool, report *LoadReport, note func(*[]string, string, ...any)) {
	data, err := os.ReadFile(cfg.ReplayPath)
	if err != nil {
		report.Untyped++
		note(&report.UntypedNotes, "replay: %v", err)
		return
	}
	var lg verdictLog
	if err := json.Unmarshal(data, &lg); err != nil {
		report.Untyped++
		note(&report.UntypedNotes, "replay: %v", err)
		return
	}
	if lg.Seed != cfg.Seed || lg.Requests != cfg.Requests || lg.MaxAtoms != cfg.MaxAtoms || lg.HotDBs != cfg.HotDBs {
		report.Untyped++
		note(&report.UntypedNotes, "replay file shape (seed=%d req=%d atoms=%d hot=%d) differs from this run",
			lg.Seed, lg.Requests, lg.MaxAtoms, lg.HotDBs)
		return
	}
	for _, row := range lg.Verdicts {
		got, ok := verdicts[row.Idx]
		if !ok {
			continue // not completed by this run (shed/incomplete): not comparable
		}
		report.Replayed++
		if got != row.Holds {
			report.Divergent++
			job := jobs[row.Idx]
			note(&report.DivergeNotes, "replay divergence at job %d: %s %s on %q: this=%v recorded=%v",
				row.Idx, job.sem, job.kind, job.literal+job.formula, got, row.Holds)
		}
	}
}

// routerSet is the client side of router replication: an ordered URL
// list with a sticky current pick. A request that dies at the
// transport level without a response demotes the current router and
// retries on the next — safe even though POST is not idempotent,
// because inference is pure: re-solving yields the identical verdict,
// and the job is counted once, by its final outcome. Timeouts do NOT
// fail over: a slow-but-alive router may have the query solving right
// now, and hammering a replica with duplicates is how overload spreads.
type routerSet struct {
	urls      []string
	cur       atomic.Int32
	failovers atomic.Int64
}

func newRouterSet(primary string, fallbacks []string) *routerSet {
	return &routerSet{urls: append([]string{primary}, fallbacks...)}
}

// demote advances the sticky pick past a failed router. Compare-and-
// swap keeps concurrent demotions of the same router to one advance.
func (rs *routerSet) demote(idx int32) {
	if rs.cur.CompareAndSwap(idx, (idx+1)%int32(len(rs.urls))) {
		rs.failovers.Add(1)
	}
}

// transportFailure reports whether an exchange died before any
// response arrived for a reason that indicts the router (not the
// request): status 0 and not a client-side timeout.
func transportFailure(status int, err error) bool {
	if status != 0 || err == nil {
		return false
	}
	var ue *url.Error
	if errors.As(err, &ue) && ue.Timeout() {
		return false
	}
	return true
}

// doRequest runs one job with router failover: at most one attempt per
// configured router, sticky between failures.
func (rs *routerSet) doRequest(client *http.Client, job loadJob) (int, int, QueryResponse, ErrorResponse, error) {
	for attempt := 0; ; attempt++ {
		idx := rs.cur.Load()
		kind, status, qr, er, err := doRequest(client, rs.urls[idx], job)
		if kind == outcomeUntyped && transportFailure(status, err) &&
			len(rs.urls) > 1 && attempt+1 < len(rs.urls) {
			rs.demote(idx)
			continue
		}
		return kind, status, qr, er, err
	}
}

// outcome classes of one HTTP exchange.
const (
	outcomeCompleted = iota
	outcomeIncomplete
	outcomeShed429
	outcomeShed503
	outcomeRejected
	outcomeUntyped
)

// doRequest performs one exchange and classifies it. Every path that
// doesn't match the typed taxonomy exactly returns outcomeUntyped.
func doRequest(client *http.Client, baseURL string, job loadJob) (int, int, QueryResponse, ErrorResponse, error) {
	var qr QueryResponse
	var er ErrorResponse
	resp, err := client.Post(baseURL+endpoint(job.kind), "application/json", bytes.NewReader(job.body))
	if err != nil {
		return outcomeUntyped, 0, qr, er, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("reading body: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(body, &qr); err != nil {
			return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("partial/invalid 200 body: %w", err)
		}
		switch qr.Verdict {
		case "true", "false":
			return outcomeCompleted, resp.StatusCode, qr, er, nil
		case "incomplete":
			if !KnownCauseCodes[qr.CauseCode] {
				return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("unknown cause code %q", qr.CauseCode)
			}
			return outcomeIncomplete, resp.StatusCode, qr, er, nil
		default:
			return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("unknown verdict %q", qr.Verdict)
		}
	case http.StatusTooManyRequests:
		if err := json.Unmarshal(body, &er); err != nil || (er.Error != ShedQueueFull && er.Error != ShedQueueWait && er.Error != ShedCost) {
			return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("untyped 429 body %q", body)
		}
		return outcomeShed429, resp.StatusCode, qr, er, nil
	case http.StatusServiceUnavailable:
		// node_unavailable is the cluster router's typed shed when a
		// key's whole failover sequence is down; single-node servers
		// never emit it.
		if err := json.Unmarshal(body, &er); err != nil ||
			(er.Error != ShedDraining && er.Error != ShedBreakerOpen && er.Error != ShedNodeUnavailable) {
			return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("untyped 503 body %q", body)
		}
		return outcomeShed503, resp.StatusCode, qr, er, nil
	case http.StatusUnprocessableEntity:
		if err := json.Unmarshal(body, &er); err != nil || (er.Error != ReasonUnsupported && er.Error != ReasonNotStratifiable) {
			return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("untyped 422 body %q", body)
		}
		return outcomeRejected, resp.StatusCode, qr, er, nil
	default:
		return outcomeUntyped, resp.StatusCode, qr, er, fmt.Errorf("unexpected status %d body %q", resp.StatusCode, body)
	}
}

// FetchHealth reads and decodes /healthz. The request carries its own
// deadline: a health probe against a wedged server must fail fast, not
// inherit the client's (possibly unlimited) timeout.
func FetchHealth(client *http.Client, baseURL string) (Health, error) {
	var h Health
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// AwaitGoroutineSettle polls /healthz until the reported goroutine
// count drops back to at most baseline+slack, or the timeout expires.
func AwaitGoroutineSettle(client *http.Client, baseURL string, baseline, slack int, timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	last := -1
	for time.Now().Before(deadline) {
		h, err := FetchHealth(client, baseURL)
		if err == nil {
			last = h.Goroutines
			if h.Goroutines <= baseline+slack {
				return last, true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return last, false
}
