// Package serve is the resilient HTTP/JSON inference service over the
// semantics registry: every registered semantics (all ten families of
// the paper, aliases included) is queryable for literal inference,
// formula inference, and model existence.
//
// The paper's complexity landscape — P cells next to Π₂ᵖ cells — means
// per-request cost varies by orders of magnitude on the same server,
// so the serving layer is built around typed degradation rather than
// best-effort unbounded concurrency:
//
//   - Admission control: a bounded queue in front of a fixed-size
//     execution pool. When the queue is full, requests shed instantly
//     with a typed 429 + Retry-After (O(1) per shed, regardless of how
//     expensive the queries holding the slots are).
//   - Budget clamping: every request runs under a budget.B whose
//     limits are min(client ask, server ceiling) — a client can ask
//     for less than the ceiling but never more, and the effective
//     limits are echoed in the response.
//   - Typed three-valued answers: a 200 carries core.Verdict — true,
//     false, or incomplete with the typed interruption cause and the
//     exact oracle counters up to the interruption.
//   - Bounded retry: transient-class oracle failures (faults.ErrTransient)
//     are retried a bounded number of times with seeded full-jitter
//     backoff before surfacing as incomplete.
//   - Circuit breaking: a per-semantics closed/open/half-open breaker
//     around the oracle path. Infrastructure failures open it; while
//     open, requests shed fast with a typed 503; after a cooldown a
//     single probe decides between closing and re-opening.
//   - Graceful drain: Drain stops admission (503 for new work), lets
//     in-flight requests finish inside a drain deadline, then cancels
//     the shared base context so stragglers are interrupted through
//     the budget layer — every interruption stays typed.
//
// /healthz reports queue depth, in-flight count, breaker states, and
// shed/completion counters; /readyz flips to 503 the moment draining
// begins so load balancers stop routing before the listener closes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/plan"
	"disjunct/internal/session"
	"disjunct/internal/store"
)

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client disconnected while queued, so the body exists
// for logs, not for the (gone) client. net/http permits any code ≥ 100.
const statusClientClosedRequest = 499

// ErrDrainForced reports that the drain deadline passed with requests
// still in flight; they were canceled through the budget layer (each
// finished with a typed incomplete verdict, not a torn connection).
var ErrDrainForced = errors.New("serve: drain deadline exceeded; in-flight queries canceled")

// Config tunes the server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxConcurrent bounds simultaneously executing queries
	// (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// the executing ones (default 8×MaxConcurrent).
	QueueDepth int
	// Ceilings are the server-enforced per-request budget limits.
	// A request's effective budget is min(client ask, ceiling) per
	// dimension; zero fields leave that dimension unlimited.
	Ceilings budget.Limits
	// DrainTimeout is how long Drain waits for in-flight work before
	// canceling it through the budget layer (default 5s).
	DrainTimeout time.Duration
	// RetryMax bounds query-level retries when the oracle path fails
	// with a transient-class fault (default 2; 0 disables).
	RetryMax int
	// Breaker configures the per-semantics circuit breakers
	// (default threshold 5, cooldown 1s; Threshold ≤ 0 disables —
	// the zero value therefore disables breaking only if set
	// explicitly after New).
	Breaker BreakerConfig
	// FaultRate/FaultSeed switch on seeded chaos injection on the
	// oracle path of every request (0 = off). Used by the smoke/soak
	// harnesses; production servers leave it off.
	FaultRate float64
	FaultSeed int64
	// Sessions switches on the warm query-session layer
	// (internal/session): a compiled-DB artifact cache, fragment fast
	// paths, warm incremental solver sessions, and cross-request
	// coalescing of identical queries.
	Sessions bool
	// SessionCacheBytes / SessionMaxSessions / SessionMaxQueries /
	// SessionBatchWindow tune the session manager (zero = its
	// defaults); ignored unless Sessions is set.
	SessionCacheBytes  int64
	SessionMaxSessions int
	SessionMaxQueries  int
	SessionBatchWindow time.Duration
	// Store is the optional persistent compiled-artifact and verdict
	// tier (internal/store), already opened by the caller. Setting it
	// forces Sessions on (the store backs the session caches): compile
	// misses fall through to disk, fresh compiles and completed warm
	// verdicts are written behind, startup pre-warms the compile cache
	// from disk before /readyz reports ready, and Drain flushes and
	// closes the store instead of discarding it.
	Store *store.Store
	// Planner switches on the cost-based query planner (internal/plan):
	// every query is classified into a cost class before admission,
	// routed to the cheapest correct procedure (fast path / warm
	// session / fresh / brute refsem / two-procedure portfolio), and
	// under overload the admission queue sheds expensive queries first
	// with a typed shed_cost 429 instead of FIFO. Forces Sessions on
	// (the planner classifies on the compiled artifact).
	Planner bool
	// PlannerBruteAtoms / PlannerExpensiveNP / PlannerShedOccupancy
	// tune the planner (zero = its defaults: 8 atoms, 8 NP calls, 0.5
	// occupancy); ignored unless Planner is set.
	PlannerBruteAtoms    int
	PlannerExpensiveNP   int64
	PlannerShedOccupancy float64
	// BatchMaxQueries caps the queries one /v1/batch request may carry
	// (default 256; larger batches are rejected with a typed 400).
	BatchMaxQueries int
	// StreamMaxModels caps the models one /v1/models/stream request may
	// emit regardless of its own limit (0 = uncapped).
	StreamMaxModels int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.MaxConcurrent
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	}
	if c.Breaker.Threshold == 0 {
		c.Breaker = BreakerConfig{Threshold: 5, Cooldown: time.Second}
	}
	if c.Breaker.Cooldown <= 0 {
		c.Breaker.Cooldown = time.Second
	}
	if c.BatchMaxQueries <= 0 {
		c.BatchMaxQueries = 256
	}
	if c.Store != nil || c.Planner {
		c.Sessions = true
	}
	return c
}

// stats are the monotonic outcome counters surfaced by /healthz.
type stats struct {
	completed      atomic.Int64 // 200 with a definite verdict
	incomplete     atomic.Int64 // 200 with a typed interruption
	shedQueueFull  atomic.Int64
	shedQueueWait  atomic.Int64
	shedClientGone atomic.Int64 // client disconnected while queued
	shedDraining   atomic.Int64
	shedBreaker    atomic.Int64
	shedCost       atomic.Int64 // cost-aware admission sheds (planner on)
	badRequest     atomic.Int64 // 400/404/422
	retries        atomic.Int64 // query-level transient retries performed
	coalesced      atomic.Int64 // requests answered from a coalesced leader

	batchRequests    atomic.Int64 // /v1/batch requests admitted
	batchQueries     atomic.Int64 // queries carried by admitted batches
	streams          atomic.Int64 // /v1/models/stream requests admitted
	streamModels     atomic.Int64 // model rows emitted across all streams
	streamClientGone atomic.Int64 // streams cut by a client disconnect
}

// Server is the inference service. Create with New, mount Handler on
// any http.Server (or httptest), and call Drain to shut down.
type Server struct {
	cfg Config
	adm *admission
	mux *http.ServeMux

	// drainCtx is cancelled the moment draining begins: admission and
	// readiness watch it. baseCtx is cancelled DrainTimeout later:
	// request budgets derive from it, so cancellation reaches in-flight
	// solvers as a typed budget.ErrCanceled.
	drainCtx    context.Context
	drainCancel context.CancelFunc
	baseCtx     context.Context
	baseCancel  context.CancelCauseFunc

	// drainMu orders request registration against the start of a drain:
	// register's wg.Add and Drain's draining.Store are both under it,
	// so every Add strictly happens-before Drain's Wait (never an Add
	// from a zero counter concurrent with Wait).
	drainMu   sync.Mutex
	wg        sync.WaitGroup
	drainOnce sync.Once
	drainDone chan struct{}
	drainErr  error
	inFlight  atomic.Int64
	draining  atomic.Bool
	reqSeq    atomic.Uint64

	breakerMu sync.Mutex
	breakers  map[string]*breaker

	// sessions is the warm query-session layer, nil unless
	// cfg.Sessions; flights coalesces identical concurrent requests.
	sessions *session.Manager
	flights  flightGroup

	// planner is the cost-based query planner, nil unless cfg.Planner.
	// expBusy counts expensive-tier requests currently admitted
	// (queued or executing); the bulkhead sheds the tier past
	// MaxConcurrent-1 so one execution slot always stays available to
	// cheap traffic no matter how long the expensive queries run.
	planner *plan.Planner
	expBusy atomic.Int64

	// store is the persistent tier (nil when disabled). warmed flips
	// once the startup prewarm finishes (immediately when no store);
	// /readyz stays unready until then, and warmedCh orders Drain's
	// store close after the prewarm goroutine exits.
	store     *store.Store
	warmed    atomic.Bool
	warmedCh  chan struct{}
	prewarmed atomic.Int64 // artifacts loaded by the startup prewarm

	stats stats

	// testHook, when non-nil, runs while a request holds an execution
	// slot (before solving). Tests use it to hold slots open
	// deterministically. flightHook, when non-nil, runs right after a
	// request joins a coalescing flight; tests use it to order a leader
	// against its followers deterministically.
	testHook   func()
	flightHook func(leader bool)
}

// New builds a Server. Semantics must already be registered (blank-
// import disjunct/internal/semantics/all).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		adm:       newAdmission(cfg.MaxConcurrent, cfg.QueueDepth),
		breakers:  map[string]*breaker{},
		drainDone: make(chan struct{}),
	}
	if cfg.Sessions {
		s.sessions = session.NewManager(session.Config{
			MaxBytes:             cfg.SessionCacheBytes,
			MaxSessions:          cfg.SessionMaxSessions,
			MaxQueriesPerSession: cfg.SessionMaxQueries,
			BatchWindow:          cfg.SessionBatchWindow,
			Store:                cfg.Store,
		})
		s.flights.m = map[string]*flight{}
		s.store = cfg.Store
	}
	if cfg.Planner {
		s.planner = plan.New(plan.Config{
			BruteMaxAtoms: cfg.PlannerBruteAtoms,
			ExpensiveNP:   cfg.PlannerExpensiveNP,
			ShedOccupancy: cfg.PlannerShedOccupancy,
			Store:         cfg.Store,
		})
	}
	s.warmedCh = make(chan struct{})
	if s.store != nil {
		// Pre-warm the compile cache from disk before reporting ready:
		// load balancers only route once hot databases answer with zero
		// cold compiles. Queries that race the prewarm are still correct —
		// they fall through to the store per-text.
		go func() {
			defer close(s.warmedCh)
			n, err := s.sessions.Prewarm()
			if err == nil {
				s.prewarmed.Store(int64(n))
			}
			s.warmed.Store(true)
		}()
	} else {
		s.warmed.Store(true)
		close(s.warmedCh)
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/infer/literal", s.queryHandler("literal"))
	s.mux.HandleFunc("POST /v1/infer/formula", s.queryHandler("formula"))
	s.mux.HandleFunc("POST /v1/model", s.queryHandler("model"))
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/models/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/semantics", s.handleSemantics)
	s.mux.HandleFunc("GET /v1/handoff/export", s.handleHandoffExport)
	s.mux.HandleFunc("POST /v1/handoff/import", s.handleHandoffImport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports the number of requests currently executing.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// Drain gracefully shuts the server down: admission stops immediately
// (new requests shed with a typed 503, /readyz goes unready), in-flight
// requests are given cfg.DrainTimeout to finish, and whatever is still
// running after that is cancelled through the budget layer — each
// straggler completes its HTTP exchange with a typed incomplete
// verdict. Returns nil if everything finished inside the deadline,
// ErrDrainForced otherwise. ctx can force the cancellation phase early.
// Safe to call more than once: the first call runs the drain; later
// calls wait for that same drain and return its result (their ctx does
// not restart the grace period or force a drain already reported
// clean).
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		defer close(s.drainDone)
		s.drainErr = s.drain(ctx)
	})
	<-s.drainDone
	return s.drainErr
}

// drain is the body of the one real Drain call.
func (s *Server) drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	s.drainCancel()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	forced := false
	select {
	case <-done:
	case <-timer.C:
		forced = true
	case <-ctx.Done():
		forced = true
	}
	if forced {
		s.baseCancel(ErrDrainForced)
		<-done // budgets poll the context at conflict boundaries; prompt
		s.closeStore()
		return ErrDrainForced
	}
	s.closeStore()
	return nil
}

// closeStore flushes and closes the persistent tier at the end of a
// drain — the whole point of the store is that a drain persists the
// warm state instead of discarding it. Runs after the in-flight wait,
// so completed requests' write-behinds are on disk before exit; it
// also waits for the startup prewarm goroutine so Close never races a
// loader. The store's flusher goroutine is guaranteed exited when this
// returns (the soak's settle check asserts it).
func (s *Server) closeStore() {
	if s.store == nil {
		return
	}
	<-s.warmedCh
	s.store.Close()
}

// register adds the request to the drain WaitGroup unless draining has
// begun; it returns false (and adds nothing) in the latter case. Under
// drainMu a request either sees draining set and sheds, or completes
// its Add before Drain can begin waiting — so a drain reported clean
// never leaves a registered request still running.
func (s *Server) register() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.wg.Add(1)
	return true
}

// breakerFor returns (creating on first use) the breaker guarding one
// semantics.
func (s *Server) breakerFor(name string) *breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b, ok := s.breakers[name]
	if !ok {
		b = newBreaker(s.cfg.Breaker)
		s.breakers[name] = b
	}
	return b
}

// writeJSON marshals v fully before touching the ResponseWriter, so a
// client never observes a partial body: either the whole typed
// document arrives or the connection errors.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshal of our own wire types cannot fail; guard anyway.
		http.Error(w, `{"error":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// writeShed emits a typed shed response with Retry-After.
func writeShed(w http.ResponseWriter, status int, resp ErrorResponse) {
	if resp.RetryAfterMS > 0 {
		secs := (resp.RetryAfterMS + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, resp)
}

// retryAfterMS converts a breaker cooldown remainder into the wire
// hint, clamping to at least 1ms: a sub-millisecond remainder must not
// truncate to 0, which would suppress both the JSON field (omitempty)
// and the Retry-After header the cluster router keys its backoff on.
func retryAfterMS(d time.Duration) int64 {
	ms := int64(d / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// clamp applies the server ceilings to a client ask: per dimension the
// effective limit is the stricter of the two (zero = unlimited).
func clamp(ask, ceiling budget.Limits) budget.Limits {
	min := func(a, c int64) int64 {
		switch {
		case c <= 0:
			return a
		case a <= 0 || a > c:
			return c
		default:
			return a
		}
	}
	eff := budget.Limits{
		Conflicts:    min(ask.Conflicts, ceiling.Conflicts),
		Propagations: min(ask.Propagations, ceiling.Propagations),
		NPCalls:      min(ask.NPCalls, ceiling.NPCalls),
	}
	switch {
	case ceiling.Deadline <= 0:
		eff.Deadline = ask.Deadline
	case ask.Deadline <= 0 || ask.Deadline > ceiling.Deadline:
		eff.Deadline = ceiling.Deadline
	default:
		eff.Deadline = ask.Deadline
	}
	return eff
}

// parsedQuery is a decoded, validated request.
type parsedQuery struct {
	semName string
	d       *db.DB
	lit     logic.Lit
	formula *logic.Formula
	eff     budget.Limits
	// comp is the compiled artifact when the session layer is on;
	// qtext is the canonical query text and dbText the raw database
	// text (memo/coalescing key components).
	comp   *session.Compiled
	qtext  string
	dbText string
	// dec is the planner's pre-admission decision; planned reports
	// whether one was made (planner on and artifact compiled).
	dec     plan.Decision
	planned bool
}

// parseLiteral parses "x", "-x", "~x", or "not x" against a
// vocabulary.
func parseLiteral(in string, voc *logic.Vocabulary) (logic.Lit, error) {
	t := strings.TrimSpace(in)
	neg := false
	switch {
	case strings.HasPrefix(t, "-"):
		neg, t = true, strings.TrimSpace(t[1:])
	case strings.HasPrefix(t, "~"):
		neg, t = true, strings.TrimSpace(t[1:])
	case strings.HasPrefix(t, "not "):
		neg, t = true, strings.TrimSpace(t[4:])
	}
	if t == "" {
		return 0, fmt.Errorf("empty literal")
	}
	a, ok := voc.Lookup(t)
	if !ok {
		return 0, fmt.Errorf("atom %q not in the database's vocabulary", t)
	}
	return logic.MkLit(a, !neg), nil
}

// decodeQuery validates the body for one query kind. It returns a
// typed ErrorResponse (with its HTTP status) on any malformed input.
func (s *Server) decodeQuery(kind string, r *http.Request) (parsedQuery, int, *ErrorResponse) {
	var pq parsedQuery
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		return pq, http.StatusBadRequest, &ErrorResponse{Error: ReasonBadRequest, Detail: "body: " + err.Error()}
	}
	if _, ok := core.InfoFor(req.Semantics); !ok {
		return pq, http.StatusNotFound, &ErrorResponse{Error: ReasonUnknownSemantics, Semantics: req.Semantics}
	}
	var d *db.DB
	if s.sessions != nil {
		// Hot databases skip grounding entirely: the compiled artifact
		// (parse, CNF, classification, canonical key) is cached by exact
		// request text and shared read-only across requests.
		if comp, ok := s.sessions.Lookup(req.DB); ok {
			pq.comp, d = comp, comp.D
		}
	}
	if d == nil {
		parsed, err := db.Parse(req.DB)
		if err != nil {
			return pq, http.StatusBadRequest, &ErrorResponse{Error: ReasonBadRequest, Detail: "db: " + err.Error()}
		}
		d = parsed
		if s.sessions != nil {
			pq.comp = s.sessions.Intern(req.DB, d)
			d = pq.comp.D
		}
	}
	if d.N() == 0 {
		return pq, http.StatusBadRequest, &ErrorResponse{Error: ReasonBadRequest, Detail: "db: empty vocabulary"}
	}
	pq.semName = req.Semantics
	pq.d = d
	pq.dbText = req.DB
	switch kind {
	case "literal":
		lit, err := parseLiteral(req.Literal, d.Voc)
		if err != nil {
			return pq, http.StatusBadRequest, &ErrorResponse{Error: ReasonBadRequest, Detail: "literal: " + err.Error()}
		}
		pq.lit = lit
		pq.qtext = d.Voc.LitString(lit)
	case "formula":
		f, err := logic.ParseFormula(req.Formula, d.Voc)
		if err != nil {
			return pq, http.StatusBadRequest, &ErrorResponse{Error: ReasonBadRequest, Detail: "formula: " + err.Error()}
		}
		pq.formula = f
		pq.qtext = f.String(d.Voc)
	}
	pq.eff = clamp(req.Limits.ToLimits(), s.cfg.Ceilings)
	return pq, 0, nil
}

// queryHandler builds the handler for one query kind. The request
// path is: drain check → decode/validate → breaker → admission →
// execute (with bounded transient retries) → typed response.
func (s *Server) queryHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.stats.shedDraining.Add(1)
			writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
			return
		}
		pq, status, errResp := s.decodeQuery(kind, r)
		if errResp != nil {
			s.stats.badRequest.Add(1)
			writeJSON(w, status, *errResp)
			return
		}

		// Cost-aware admission: the planner classifies the query on its
		// compiled artifact before any slot is claimed. Past the queue's
		// occupancy threshold, expensive queries (Σ₂ᵖ-class, cold or
		// high-estimate) shed with a typed 429 so the cheap traffic the
		// server can still finish keeps completing — under FIFO both
		// classes would shed alike once the queue fills.
		if s.planner != nil && pq.comp != nil {
			pq.dec = s.planner.Decide(pq.comp, pq.semName, sessionKind(kind))
			pq.planned = true
			queued, _, _ := s.adm.depth()
			shed := s.planner.ShouldShed(pq.dec, int(queued), s.adm.queueBound())
			if !shed && s.planner.Expensive(pq.dec) {
				// Bulkhead: the expensive tier holds at most
				// MaxConcurrent-1 admissions at once, so a burst of
				// seconds-long Σ₂ᵖ queries can never pin every
				// execution slot — the microsecond traffic always has
				// one to land on. (The occupancy check above can't
				// provide this: a fast-draining queue reads as empty
				// the instant an expensive query arrives, even while
				// every slot is blocked.)
				tierCap := int64(s.cfg.MaxConcurrent - 1)
				if tierCap < 1 {
					tierCap = 1
				}
				if s.expBusy.Add(1) > tierCap {
					s.expBusy.Add(-1)
					shed = true
				} else {
					defer s.expBusy.Add(-1)
				}
			}
			if shed {
				s.planner.CountShed()
				s.stats.shedCost.Add(1)
				writeShed(w, http.StatusTooManyRequests, ErrorResponse{
					Error: ShedCost, Semantics: pq.semName, RetryAfterMS: 50,
				})
				return
			}
		}
		br := s.breakerFor(pq.semName)
		ok, probe, retryAfter := br.allow()
		if !ok {
			s.stats.shedBreaker.Add(1)
			writeShed(w, http.StatusServiceUnavailable, ErrorResponse{
				Error:        ShedBreakerOpen,
				Semantics:    pq.semName,
				RetryAfterMS: retryAfterMS(retryAfter),
			})
			return
		}

		// Register with the drain WaitGroup before admission so Drain's
		// Wait covers the whole admit+execute span (queued requests are
		// released promptly via drainCtx).
		if !s.register() {
			if probe {
				br.cancelProbe()
			}
			s.stats.shedDraining.Add(1)
			writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
			return
		}
		defer s.wg.Done()

		// The queue wait is bounded by the request's effective deadline
		// (measured from arrival); the solve budget restarts after
		// admission.
		admCtx := r.Context()
		if pq.eff.Deadline > 0 {
			var cancel context.CancelFunc
			admCtx, cancel = context.WithTimeout(admCtx, pq.eff.Deadline)
			defer cancel()
		}
		res := s.adm.admit(s.drainCtx, admCtx)
		if res.shed != "" {
			// The breaker saw neither success nor failure: record
			// nothing, but return a claimed probe slot so the breaker
			// can't wedge half-open with probing set forever.
			if probe {
				br.cancelProbe()
			}
			switch res.shed {
			case ShedQueueFull:
				s.stats.shedQueueFull.Add(1)
				writeShed(w, http.StatusTooManyRequests, ErrorResponse{Error: ShedQueueFull, RetryAfterMS: 50})
			case ShedQueueWait:
				s.stats.shedQueueWait.Add(1)
				writeShed(w, http.StatusTooManyRequests, ErrorResponse{Error: ShedQueueWait, RetryAfterMS: 50})
			case ShedClientGone:
				s.stats.shedClientGone.Add(1)
				writeShed(w, statusClientClosedRequest, ErrorResponse{Error: ShedClientGone})
			default:
				s.stats.shedDraining.Add(1)
				writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
			}
			return
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		defer res.release()
		if s.testHook != nil {
			s.testHook()
		}

		// Coalesce identical concurrent requests: the first arrival
		// leads and solves; followers reuse its response when it is a
		// complete verdict, and re-execute themselves otherwise (an
		// incomplete or semantic-error outcome can depend on the
		// leader's own timing and budget). Followers wait holding their
		// own admission slots, so the leader is never starved.
		var fl *flight
		var flKey string
		if s.sessions != nil {
			flKey = coalesceKey(kind, pq)
			f, leader := s.flights.join(flKey)
			if s.flightHook != nil {
				s.flightHook(leader)
			}
			if leader {
				fl = f
			} else {
				select {
				case <-f.done:
					if f.ok {
						s.stats.coalesced.Add(1)
						resp := f.resp
						resp.Path = "coalesced"
						resp.QueueMS = float64(res.waited) / float64(time.Millisecond)
						br.record(false)
						s.stats.completed.Add(1)
						writeJSON(w, http.StatusOK, resp)
						return
					}
					// Leader's outcome is not sharable: fall through and
					// run the query ourselves (without leading).
				case <-r.Context().Done():
					// Our client is going away; execute() surfaces the
					// typed cancellation.
				}
			}
		}

		resp, semErr := s.execute(r.Context(), kind, pq)
		if fl != nil {
			s.flights.finish(flKey, fl, resp, semErr == nil && !resp.Incomplete)
		}
		if semErr != nil {
			// A semantic outcome, not a service failure: the database
			// is outside the class this semantics is defined for.
			s.stats.badRequest.Add(1)
			reason := ReasonUnsupported
			if errors.Is(semErr, core.ErrNotStratifiable) {
				reason = ReasonNotStratifiable
			}
			writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{
				Error: reason, Semantics: pq.semName, Detail: semErr.Error(),
			})
			br.record(false)
			return
		}
		resp.QueueMS = float64(res.waited) / float64(time.Millisecond)
		br.record(resp.Incomplete && infrastructureFailure(resp.CauseCode))
		if resp.Incomplete {
			s.stats.incomplete.Add(1)
		} else {
			s.stats.completed.Add(1)
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// infrastructureFailure classifies cause codes for the breaker: only
// oracle-infrastructure faults (transient exhaustion, injected
// cancels — surfaced as plain cancels — are excluded because genuine
// client cancels look identical) open the breaker. A client whose own
// conflict/NP/deadline budget trips is being served correctly.
func infrastructureFailure(code string) bool {
	return code == CauseTransientExhausted
}

// handleSemantics lists the registry with its dispatch metadata.
func (s *Server) handleSemantics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Semantics []core.Info `json:"semantics"`
	}{core.Infos()})
}

// breakerReport is one breaker's /healthz entry.
type breakerReport struct {
	State    string `json:"state"`
	Failures int    `json:"failures"`
}

// Health is the /healthz document.
type Health struct {
	Status     string                   `json:"status"` // "ok" | "prewarming" | "draining"
	Queued     int64                    `json:"queued"`
	Waiting    int64                    `json:"waiting"`
	Executing  int64                    `json:"executing"`
	InFlight   int64                    `json:"in_flight"`
	Goroutines int                      `json:"goroutines"`
	Breakers   map[string]breakerReport `json:"breakers"`
	Stats      map[string]int64         `json:"stats"`
	// Sessions is present when the warm session layer is enabled:
	// compiled-artifact cache hits/misses/bytes, checkout and
	// fast-path/warm counters, and residency gauges.
	Sessions map[string]int64 `json:"sessions,omitempty"`
	// Store is present when the persistent tier is enabled: entry
	// counts, write-behind and recovery statistics, and the prewarm
	// outcome. `torn_tail`/`flusher_running`/`prewarmed` are 0/1 gauges.
	Store map[string]int64 `json:"store,omitempty"`
	// Planner is present when the cost-based planner is enabled:
	// decisions and estimates served, per-procedure routing counts,
	// portfolio races with the winner histogram, and cost sheds.
	Planner map[string]int64 `json:"planner,omitempty"`
}

func (s *Server) health() Health {
	queued, waiting, executing := s.adm.depth()
	h := Health{
		Status:     "ok",
		Queued:     queued,
		Waiting:    waiting,
		Executing:  executing,
		InFlight:   s.inFlight.Load(),
		Goroutines: runtime.NumGoroutine(),
		Breakers:   map[string]breakerReport{},
		Stats: map[string]int64{
			"completed":          s.stats.completed.Load(),
			"incomplete":         s.stats.incomplete.Load(),
			"shed_queue_full":    s.stats.shedQueueFull.Load(),
			"shed_queue_wait":    s.stats.shedQueueWait.Load(),
			"shed_client_gone":   s.stats.shedClientGone.Load(),
			"shed_draining":      s.stats.shedDraining.Load(),
			"shed_breaker":       s.stats.shedBreaker.Load(),
			"shed_cost":          s.stats.shedCost.Load(),
			"bad_request":        s.stats.badRequest.Load(),
			"retries":            s.stats.retries.Load(),
			"coalesced":          s.stats.coalesced.Load(),
			"batch_requests":     s.stats.batchRequests.Load(),
			"batch_queries":      s.stats.batchQueries.Load(),
			"streams":            s.stats.streams.Load(),
			"stream_models":      s.stats.streamModels.Load(),
			"stream_client_gone": s.stats.streamClientGone.Load(),
		},
	}
	if s.sessions != nil {
		st := s.sessions.Stats()
		h.Sessions = map[string]int64{
			"compiled_hits":      st.CompiledHits,
			"compiled_misses":    st.CompiledMisses,
			"compiled_bytes":     st.CompiledBytes,
			"compiled_entries":   st.CompiledEntries,
			"compiled_evictions": st.CompiledEvictions,
			"fast_queries":       st.FastQueries,
			"warm_queries":       st.WarmQueries,
			"memo_hits":          st.MemoHits,
			"checkouts":          st.Checkouts,
			"checkout_timeouts":  st.CheckoutTimeouts,
			"retired":            st.Retired,
			"active_checkouts":   st.ActiveCheckouts,
			"sessions":           st.Sessions,
			"cold_compiles":      st.ColdCompiles,
			"store_hits":         st.StoreArtifactHits,
			"prewarmed_arts":     st.PrewarmedArtifacts,
			"verdict_seeds":      st.StoreVerdictSeeds,
		}
	}
	if s.store != nil {
		st := s.store.Stats()
		b2i := func(v bool) int64 {
			if v {
				return 1
			}
			return 0
		}
		h.Store = map[string]int64{
			"artifacts":       st.Artifacts,
			"verdicts":        st.Verdicts,
			"interns":         st.Interns,
			"queued_writes":   st.QueuedWrites,
			"flushed_writes":  st.FlushedWrites,
			"flushes":         st.Flushes,
			"compactions":     st.Compactions,
			"write_errors":    st.WriteErrors,
			"size_bytes":      st.SizeBytes,
			"torn_tail":       b2i(st.TornTail),
			"dropped_bytes":   st.DroppedBytes,
			"flusher_running": b2i(st.FlusherRunning),
			"prewarmed":       b2i(s.warmed.Load()),
			"prewarmed_arts":  s.prewarmed.Load(),
		}
	}
	if s.planner != nil {
		h.Planner = s.planner.Stats()
	}
	if !s.warmed.Load() {
		// Mirror /readyz for the healthz-probing cluster router: the
		// store prewarm is still running, so the node is alive but must
		// not take traffic yet.
		h.Status = "prewarming"
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	s.breakerMu.Lock()
	for name, b := range s.breakers {
		state, failures := b.snapshot()
		h.Breakers[name] = breakerReport{State: state, Failures: failures}
	}
	s.breakerMu.Unlock()
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason"`
		}{false, ShedDraining})
		return
	}
	if !s.warmed.Load() {
		// The store prewarm hasn't finished: stay unready so load
		// balancers don't route traffic into a cold compile cache.
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason"`
		}{false, "prewarming"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Ready bool `json:"ready"`
	}{true})
}
