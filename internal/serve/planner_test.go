package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"disjunct/internal/keyspace"
	"disjunct/internal/plan"
)

// newPlannerServer builds a planner-enabled server (which implies
// sessions) and its test listener.
func newPlannerServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Planner = true
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestPlannerVerdictIdentityAndPaths drives one query through every
// procedure the planner routes between — fast path, warm session,
// portfolio race, brute, and fresh — and checks each served verdict
// against the direct library call. The planner must never move a
// verdict, only the route that produces it.
func TestPlannerVerdictIdentityAndPaths(t *testing.T) {
	srv, ts := newPlannerServer(t, Config{})

	post1 := func(sem, dbText, lit string) QueryResponse {
		t.Helper()
		status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: sem, DB: dbText, Literal: lit})
		if status != http.StatusOK {
			t.Fatalf("%s on %q: status %d body %s", sem, dbText, status, body)
		}
		qr := decodeQueryResponse(t, body)
		if qr.Incomplete {
			t.Fatalf("%s on %q: unexpected interruption %s", sem, dbText, qr.CauseCode)
		}
		if want := directVerdict(t, sem, dbText, lit); qr.Holds != want {
			t.Fatalf("%s ⊨ %s on %q (path %q): served=%v direct=%v", sem, lit, dbText, qr.Path, qr.Holds, want)
		}
		return qr
	}

	// Fast path: definite fragment, zero NP calls.
	if qr := post1("GCWA", "a. b :- a.", "b"); qr.Path != "fast" || qr.Counters.NPCalls != 0 {
		t.Errorf("definite GCWA: path %q np=%d, want fast/0", qr.Path, qr.Counters.NPCalls)
	}
	// Warm session: minimal-model family on the general fragment.
	if qr := post1("GCWA", "a | b. b | c.", "-a"); qr.Path != "session" {
		t.Errorf("disjunctive GCWA: path %q, want session", qr.Path)
	}
	// Cold tiny Σ₂ᵖ query outside the warm family: portfolio race.
	if qr := post1("DSM", "a | b. b | c.", "-a"); !strings.HasPrefix(qr.Path, "portfolio:") {
		t.Errorf("cold tiny DSM: path %q, want portfolio:*", qr.Path)
	}
	// Calibrate the key expensive: the next decision routes brute.
	ests := srv.planner.Export()
	if len(ests) == 0 {
		t.Fatal("no estimate recorded after the portfolio query")
	}
	var dsmRaw string
	for _, e := range ests {
		if e.Sem == "DSM" {
			dsmRaw = e.Raw
		}
	}
	if dsmRaw == "" {
		t.Fatalf("no DSM estimate in %d exported entries", len(ests))
	}
	srv.planner.Observe(dsmRaw, "DSM", plan.Cost{NPCalls: 10_000})
	if qr := post1("DSM", "a | b. b | c.", "-a"); qr.Path != "brute" || qr.Counters.NPCalls != 0 {
		t.Errorf("expensive-estimate DSM: path %q np=%d, want brute/0", qr.Path, qr.Counters.NPCalls)
	}
	// No brute reference and no warm family: the fresh path, as before
	// the planner existed.
	if qr := post1("CWA", "a | b.", "-a"); qr.Path != "" {
		t.Errorf("CWA: path %q, want fresh (empty)", qr.Path)
	}

	h, err := FetchHealth(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if h.Planner == nil {
		t.Fatal("healthz missing planner section on a planner-enabled server")
	}
	for _, key := range []string{
		"decisions", "estimates_served", "estimate_entries", "observations",
		"routed_fast", "routed_warm", "routed_fresh", "routed_brute", "routed_portfolio",
		"portfolio_races", "portfolio_win_brute", "portfolio_win_fresh", "shed_cost",
	} {
		if _, ok := h.Planner[key]; !ok {
			t.Fatalf("healthz planner section missing %q: %v", key, h.Planner)
		}
	}
	ps := h.Planner
	if ps["routed_fast"] == 0 || ps["routed_warm"] == 0 || ps["routed_fresh"] == 0 ||
		ps["routed_brute"] == 0 || ps["routed_portfolio"] == 0 {
		t.Errorf("route coverage missing in planner stats: %v", ps)
	}
	if ps["portfolio_races"] == 0 || ps["portfolio_races"] != ps["portfolio_win_brute"]+ps["portfolio_win_fresh"] {
		t.Errorf("portfolio winner histogram inconsistent: %v", ps)
	}
	if _, ok := h.Stats["shed_cost"]; !ok {
		t.Error("healthz stats missing shed_cost counter")
	}

	// A planner-off server reports no planner section.
	if h := New(Config{}).health(); h.Planner != nil {
		t.Error("planner-off server reports a planner section")
	}
}

// TestPlannerCostShedTyped429 pins the cost-aware admission contract:
// above the occupancy threshold an expensive (Σ₂ᵖ-class, cold) query
// sheds with the typed shed_cost 429 before claiming a queue slot,
// while fast-path and NP-class traffic keeps being admitted; below the
// threshold nothing sheds.
func TestPlannerCostShedTyped429(t *testing.T) {
	srv, ts := newPlannerServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})

	// Simulate one in-flight request (occupancy 1/2 = the default 0.5
	// threshold) without racing a real slow query.
	srv.adm.queued.Add(1)
	defer srv.adm.queued.Add(-1)

	status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "DSM", DB: "a | b. b | c.", Literal: "-a"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("cold Σ₂ᵖ query under overload: status %d body %s, want 429", status, body)
	}
	er := decodeErrorResponse(t, body)
	if er.Error != ShedCost {
		t.Fatalf("shed reason %q, want %q", er.Error, ShedCost)
	}
	if er.RetryAfterMS <= 0 {
		t.Errorf("shed_cost response missing retry_after_ms: %+v", er)
	}

	// Cheap traffic is untouched at the same occupancy.
	if status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a. b :- a.", Literal: "b"}); status != http.StatusOK {
		t.Fatalf("fast-path query under overload: status %d body %s", status, body)
	}
	if status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "CWA", DB: "a | b.", Literal: "-a"}); status != http.StatusOK {
		t.Fatalf("NP-class query under overload: status %d body %s", status, body)
	}

	// Below the threshold the same expensive query is admitted.
	srv.adm.queued.Add(-1)
	status, body = post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "DSM", DB: "a | b. b | c.", Literal: "-a"})
	srv.adm.queued.Add(1) // restore for the deferred release
	if status != http.StatusOK {
		t.Fatalf("Σ₂ᵖ query below occupancy threshold: status %d body %s", status, body)
	}

	h, err := FetchHealth(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats["shed_cost"] != 1 || h.Planner["shed_cost"] != 1 {
		t.Errorf("shed_cost counters: stats=%d planner=%d, want 1/1", h.Stats["shed_cost"], h.Planner["shed_cost"])
	}
}

// TestHandoffEstimateRoundTrip: calibrated estimates ride the handoff
// — exported alongside artifacts and verdicts, sliced by the same
// keyspace ranges, and imported idempotently (max-count wins) into a
// peer whose planner then serves them on first sight of the key.
func TestHandoffEstimateRoundTrip(t *testing.T) {
	_, tsA := newPlannerServer(t, Config{})

	dbs := []string{"a | b.", "a | b. c | d.", "a | b. b | c."}
	for _, d := range dbs {
		for _, sem := range []string{"GCWA", "DSM"} {
			if status, body := post(t, tsA, "/v1/infer/literal", QueryRequest{Semantics: sem, DB: d, Literal: "-a"}); status != http.StatusOK {
				t.Fatalf("%s on %q: status %d body %s", sem, d, status, body)
			}
		}
	}

	full := exportHandoff(t, tsA.URL, "")
	if len(full.Estimates) < len(dbs) {
		t.Fatalf("full export carries %d estimates for %d×2 observed queries", len(full.Estimates), len(dbs))
	}

	// Ranges slice estimates exactly like artifacts and verdicts.
	h0 := keyspace.HashKey(full.Estimates[0].Raw)
	slice := keyspace.Ranges{{Lo: h0 - 1, Hi: h0}}
	rest := keyspace.Ranges{{Lo: h0, Hi: h0 - 1}}
	in := exportHandoff(t, tsA.URL, slice.String())
	out := exportHandoff(t, tsA.URL, rest.String())
	if len(in.Estimates) == 0 || len(in.Estimates)+len(out.Estimates) != len(full.Estimates) {
		t.Fatalf("slice (%d) + complement (%d) ≠ full (%d) estimates",
			len(in.Estimates), len(out.Estimates), len(full.Estimates))
	}
	for _, e := range in.Estimates {
		if !slice.ContainsKey(e.Raw) {
			t.Fatal("estimate leaked into the wrong slice")
		}
	}

	// Import into a fresh peer: first import accepts, re-import is a
	// no-op (the semilattice merge), and the peer serves the shipped
	// estimate on its very first decision for the key.
	srvB, tsB := newPlannerServer(t, Config{})
	if got := importHandoff(t, tsB.URL, full); got.Estimates != len(full.Estimates) {
		t.Fatalf("first import accepted %d estimates, want %d", got.Estimates, len(full.Estimates))
	}
	if got := importHandoff(t, tsB.URL, full); got.Estimates != 0 {
		t.Fatalf("re-import accepted %d estimates, want 0", got.Estimates)
	}
	if status, body := post(t, tsB, "/v1/infer/literal", QueryRequest{Semantics: "DSM", DB: dbs[0], Literal: "-a"}); status != http.StatusOK {
		t.Fatalf("peer query: status %d body %s", status, body)
	}
	h, err := FetchHealth(tsB.Client(), tsB.URL)
	if err != nil {
		t.Fatal(err)
	}
	if h.Planner["estimate_entries"] != int64(len(full.Estimates)) {
		t.Errorf("peer holds %d estimate entries, want %d", h.Planner["estimate_entries"], len(full.Estimates))
	}
	if h.Planner["estimates_served"] == 0 {
		t.Error("peer never served the imported estimate on first sight of the key")
	}
	_ = srvB
}

// importHandoff POSTs a handoff body to /v1/handoff/import.
func importHandoff(t *testing.T, baseURL string, h interface{}) HandoffImportResponse {
	t.Helper()
	body, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal handoff: %v", err)
	}
	resp, err := http.Post(baseURL+"/v1/handoff/import", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import: status %d", resp.StatusCode)
	}
	var ir HandoffImportResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatalf("import decode: %v", err)
	}
	return ir
}
