package serve

import (
	"fmt"
	"sync"
)

// Cross-request coalescing: identical (db, semantics, kind, query,
// limits) requests that overlap in time share one execution. The first
// arrival becomes the leader and solves; followers wait on the
// leader's flight and reuse its response when — and only when — it is
// a complete 200 verdict. Incomplete verdicts (budget trips, drain
// cancels) and semantic errors are never shared: they can depend on
// the leader's timing (its client's deadline, its arrival order
// against a drain), so each follower re-executes those itself.
//
// Followers already hold their own admission slots while they wait, so
// a waiting follower can never starve the leader of the pool —
// coalescing only ever reduces solver work, never admission capacity.

// flight is one in-progress leader execution. resp/ok are written by
// the leader strictly before close(done); followers read them only
// after <-done.
type flight struct {
	done chan struct{}
	resp QueryResponse
	ok   bool // resp is a complete 200 verdict, safe to share
}

// flightGroup indexes in-progress flights by coalescing key. The map
// is nil unless sessions are enabled.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key and whether the caller is its
// leader. A leader MUST call finish exactly once on every path out of
// its execution, or followers block until their own contexts expire.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and releases the followers.
// The map entry is removed before done is closed, so a request
// arriving after the close starts a fresh flight rather than reading a
// completed one.
func (g *flightGroup) finish(key string, f *flight, resp QueryResponse, ok bool) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.resp, f.ok = resp, ok
	close(f.done)
}

// coalesceKey identifies requests whose answers are interchangeable:
// same database text, semantics, query kind and text, and the same
// effective (clamped) budget — a stricter budget may legitimately
// yield incomplete where a looser one completes.
func coalesceKey(kind string, pq parsedQuery) string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%v\x00%s", pq.semName, kind, pq.qtext, pq.eff, pq.dbText)
}
