package serve

import (
	"context"
	"errors"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/faults"
	"disjunct/internal/oracle"
	"disjunct/internal/plan"
	"disjunct/internal/session"
)

// execute runs one admitted query under its clamped budget. The
// procedure ladder is: warm session layer (fragment fast paths and
// warm incremental engines) first, then — when the planner is on — the
// routed procedure (brute refsem for tiny expensive instances, or a
// brute-vs-fresh portfolio race for boundary estimates), and finally
// the fresh per-attempt path with bounded transient retries. It
// returns the wire response, or a semantic error (ErrUnsupported /
// ErrNotStratifiable) for the handler to surface as a typed 422.
// Every finished query's measured counters feed the planner's cost
// model.
func (s *Server) execute(reqCtx context.Context, kind string, pq parsedQuery) (QueryResponse, error) {
	seq := s.reqSeq.Add(1)

	// A query budget must observe both the client connection and the
	// server's drain-deadline cancellation.
	ctx, cancel := context.WithCancelCause(reqCtx)
	defer cancel(nil)
	stop := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stop()
	// AfterFunc runs asynchronously; if the drain deadline has already
	// fired, cancel synchronously so even an instant query cannot race
	// past a forced drain and report a complete verdict.
	if s.baseCtx.Err() != nil {
		cancel(context.Cause(s.baseCtx))
	}

	// Warm session layer first: fragment fast paths (zero NP calls)
	// and warm incremental engines for the minimal-model family.
	// Unhandled queries fall through to the planner / fresh path.
	// The session budget derives from the same chained context, so
	// drain cancellation reaches warm solves as typed interruptions;
	// fault injection never reaches the warm path (its engine solves
	// directly, not through the one-shot oracle hook), so session
	// interruptions are always budget-class and never retried.
	if s.sessions != nil && pq.comp != nil {
		if resp, handled := s.executeSession(ctx, kind, pq); handled {
			s.observeCost(pq, resp)
			return resp, nil
		}
	}

	if s.planner != nil && pq.planned {
		switch pq.dec.Proc {
		case plan.ProcBrute:
			if resp, ok := s.executeBrute(ctx, kind, pq); ok {
				s.observeCost(pq, resp)
				return resp, nil
			}
			// Ineligible after all (or already canceled): fresh path.
		case plan.ProcPortfolio:
			if resp, semErr, handled := s.executePortfolio(ctx, kind, pq, seq); handled {
				if semErr != nil {
					return QueryResponse{}, semErr
				}
				s.observeCost(pq, resp)
				return resp, nil
			}
		}
	}

	resp, semErr := s.freshLoop(ctx, kind, pq, seq)
	if semErr == nil {
		s.observeCost(pq, resp)
	}
	return resp, semErr
}

// freshLoop is the fresh execution path: per-attempt budgets and
// oracles, retrying transient-class oracle failures a bounded number
// of times with seeded full-jitter backoff.
//
// Each attempt gets a fresh budget and oracle: counters in the
// response are exactly the work of the attempt that produced the
// verdict, and an interrupted attempt can never leak partial state
// into the next.
func (s *Server) freshLoop(ctx context.Context, kind string, pq parsedQuery, seq uint64) (QueryResponse, error) {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		b := budget.New(ctx, pq.eff)
		o := oracle.NewNP().WithBudget(b)
		if s.cfg.FaultRate > 0 {
			// Salted per (request, attempt): a retry re-rolls the fault
			// sequence instead of deterministically re-failing.
			o.WithFaults(faults.NewInjector(s.cfg.FaultRate, s.cfg.FaultSeed+int64(seq)*1000003+int64(attempt)))
		}
		sem, ok := core.New(pq.semName, core.Options{Oracle: o})
		if !ok {
			// Unreachable: decodeQuery checked the registry.
			return QueryResponse{}, core.ErrUnsupported
		}
		var holds bool
		var err error
		switch kind {
		case "literal":
			holds, err = sem.InferLiteral(pq.d, pq.lit)
		case "formula":
			holds, err = sem.InferFormula(pq.d, pq.formula)
		default: // "model"
			holds, err = sem.HasModel(pq.d)
		}
		v, semErr := core.VerdictOf(holds, err)
		if semErr != nil {
			return QueryResponse{}, semErr
		}
		if v.Incomplete && errors.Is(v.Cause, faults.ErrTransient) &&
			attempt < s.cfg.RetryMax && ctx.Err() == nil && !s.draining.Load() {
			s.stats.retries.Add(1)
			time.Sleep(faults.FullJitter(uint64(seq)*0x9e3779b97f4a7c15+uint64(s.cfg.FaultSeed), attempt))
			continue
		}
		return QueryResponse{
			Semantics:  pq.semName,
			Kind:       kind,
			Verdict:    VerdictString(v),
			Holds:      v.Holds,
			Incomplete: v.Incomplete,
			CauseCode:  CauseCode(v.Cause),
			Cause:      causeString(v.Cause),
			Counters:   CountersFrom(o.Counters()),
			Limits:     LimitsFrom(pq.eff),
			Retries:    attempt,
			SolveMS:    float64(time.Since(start)) / float64(time.Millisecond),
		}, nil
	}
}

// freshOnce is one fresh attempt as a portfolio arm: same budget,
// oracle, and fault salting as the loop's attempt 0, but no retries —
// the brute arm completes deterministically, so a transiently failed
// fresh arm simply loses the race.
func (s *Server) freshOnce(ctx context.Context, kind string, pq parsedQuery, seq uint64) plan.Outcome {
	b := budget.New(ctx, pq.eff)
	o := oracle.NewNP().WithBudget(b)
	if s.cfg.FaultRate > 0 {
		o.WithFaults(faults.NewInjector(s.cfg.FaultRate, s.cfg.FaultSeed+int64(seq)*1000003))
	}
	sem, ok := core.New(pq.semName, core.Options{Oracle: o})
	if !ok {
		return plan.Outcome{Err: core.ErrUnsupported}
	}
	var holds bool
	var err error
	switch kind {
	case "literal":
		holds, err = sem.InferLiteral(pq.d, pq.lit)
	case "formula":
		holds, err = sem.InferFormula(pq.d, pq.formula)
	default: // "model"
		holds, err = sem.HasModel(pq.d)
	}
	out := plan.Outcome{Counters: o.Counters()}
	v, semErr := core.VerdictOf(holds, err)
	switch {
	case semErr != nil:
		out.Err = semErr
	case v.Incomplete:
		out.Err = v.Cause
	default:
		out.Holds = v.Holds
	}
	return out
}

// executeBrute answers a tiny instance by explicit refsem model-set
// construction — no oracle, no search, a definite verdict in
// microseconds. ok is false when the pair turns out ineligible (the
// caller falls back to the fresh path).
func (s *Server) executeBrute(ctx context.Context, kind string, pq parsedQuery) (QueryResponse, bool) {
	start := time.Now()
	holds, ok := plan.Brute(ctx, pq.comp, pq.semName, sessionKind(kind), pq.lit, pq.formula, s.planner.BruteMaxAtoms())
	if !ok {
		return QueryResponse{}, false
	}
	v, _ := core.VerdictOf(holds, nil)
	return QueryResponse{
		Semantics: pq.semName,
		Kind:      kind,
		Verdict:   VerdictString(v),
		Holds:     holds,
		Counters:  CountersFrom(oracle.Counters{}),
		Limits:    LimitsFrom(pq.eff),
		Path:      "brute",
		SolveMS:   float64(time.Since(start)) / float64(time.Millisecond),
	}, true
}

// executePortfolio races the brute construction against one fresh
// attempt under the query's single budget envelope: the fresh arm's
// budget derives from the race context, so the first definite
// completion cancels the loser mid-search and its budget trip is
// discarded, never surfaced. The response carries the portfolio's
// total counters — both arms' work, including the canceled loser's
// partial — so accounting can't hide the race's cost. handled=false
// means the pair was ineligible and the caller runs the fresh loop.
func (s *Server) executePortfolio(ctx context.Context, kind string, pq parsedQuery, seq uint64) (QueryResponse, error, bool) {
	if !plan.BruteEligible(pq.comp, pq.semName, s.planner.BruteMaxAtoms()) {
		return QueryResponse{}, nil, false
	}
	start := time.Now()
	k := sessionKind(kind)
	bruteArm := plan.Arm{Name: "brute", Run: func(actx context.Context) plan.Outcome {
		holds, ok := plan.Brute(actx, pq.comp, pq.semName, k, pq.lit, pq.formula, s.planner.BruteMaxAtoms())
		if !ok {
			err := actx.Err()
			if err == nil {
				err = context.Canceled
			}
			return plan.Outcome{Err: err}
		}
		return plan.Outcome{Holds: holds}
	}}
	freshArm := plan.Arm{Name: "fresh", Run: func(actx context.Context) plan.Outcome {
		return s.freshOnce(actx, kind, pq, seq)
	}}
	res := plan.Race(ctx, bruteArm, freshArm)
	s.planner.CountRace(res.Winner)
	v, semErr := core.VerdictOf(res.Out.Holds, res.Out.Err)
	if semErr != nil {
		return QueryResponse{}, semErr, true
	}
	return QueryResponse{
		Semantics:  pq.semName,
		Kind:       kind,
		Verdict:    VerdictString(v),
		Holds:      v.Holds,
		Incomplete: v.Incomplete,
		CauseCode:  CauseCode(v.Cause),
		Cause:      causeString(v.Cause),
		Counters:   CountersFrom(res.Total),
		Limits:     LimitsFrom(pq.eff),
		Path:       "portfolio:" + res.Winner,
		SolveMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}, nil, true
}

// observeCost feeds one finished query's measured counters into the
// planner's cost model — complete and incomplete alike: the cost paid
// is real either way, and a query that keeps tripping its budget
// should read as expensive.
func (s *Server) observeCost(pq parsedQuery, resp QueryResponse) {
	if s.planner == nil || pq.comp == nil {
		return
	}
	s.planner.Observe(pq.comp.Raw, pq.semName, plan.Cost{
		NPCalls:  resp.Counters.NPCalls,
		SATConfl: resp.Counters.SATConfl,
		Micros:   int64(resp.SolveMS * 1000),
	})
}

// executeSession offers one query to the warm session layer. The
// boolean reports whether the layer handled it; false sends the
// caller down the fresh path. A handled query's response carries the
// session's own counters (zero on fast paths and memo hits) and its
// route in Path.
func (s *Server) executeSession(ctx context.Context, kind string, pq parsedQuery) (QueryResponse, bool) {
	start := time.Now()
	b := budget.New(ctx, pq.eff)
	res, handled := s.sessions.Query(ctx, pq.comp, session.Request{
		Sem:       pq.semName,
		Kind:      sessionKind(kind),
		Lit:       pq.lit,
		F:         pq.formula,
		QueryText: pq.qtext,
		Budget:    b,
	})
	if !handled {
		return QueryResponse{}, false
	}
	return sessionResponse(kind, pq, res, start), true
}

// sessionResponse maps a session-layer Result onto the wire shape.
// res.Err is always a typed budget interruption (the layer never
// handles queries its semantics would reject), so VerdictOf can only
// yield a verdict here, never a semantic error.
func sessionResponse(kind string, pq parsedQuery, res session.Result, start time.Time) QueryResponse {
	v, _ := core.VerdictOf(res.Holds, res.Err)
	return QueryResponse{
		Semantics:  pq.semName,
		Kind:       kind,
		Verdict:    VerdictString(v),
		Holds:      v.Holds,
		Incomplete: v.Incomplete,
		CauseCode:  CauseCode(v.Cause),
		Cause:      causeString(v.Cause),
		Counters:   CountersFrom(res.Counters),
		Limits:     LimitsFrom(pq.eff),
		Path:       res.Path,
		SolveMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}
}

func causeString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
