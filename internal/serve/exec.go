package serve

import (
	"context"
	"errors"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/faults"
	"disjunct/internal/oracle"
	"disjunct/internal/session"
)

// execute runs one admitted query under its clamped budget, retrying
// transient-class oracle failures a bounded number of times with
// seeded full-jitter backoff. It returns the wire response, or a
// semantic error (ErrUnsupported / ErrNotStratifiable) for the handler
// to surface as a typed 422.
//
// Each attempt gets a fresh budget and oracle: counters in the
// response are exactly the work of the attempt that produced the
// verdict, and an interrupted attempt can never leak partial state
// into the next. The request context is chained to the server's base
// context, so a drain-deadline cancellation reaches the solver as a
// typed budget.ErrCanceled mid-attempt.
func (s *Server) execute(reqCtx context.Context, kind string, pq parsedQuery) (QueryResponse, error) {
	seq := s.reqSeq.Add(1)

	// A query budget must observe both the client connection and the
	// server's drain-deadline cancellation.
	ctx, cancel := context.WithCancelCause(reqCtx)
	defer cancel(nil)
	stop := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stop()
	// AfterFunc runs asynchronously; if the drain deadline has already
	// fired, cancel synchronously so even an instant query cannot race
	// past a forced drain and report a complete verdict.
	if s.baseCtx.Err() != nil {
		cancel(context.Cause(s.baseCtx))
	}

	// Warm session layer first: fragment fast paths (zero NP calls)
	// and warm incremental engines for the minimal-model family.
	// Unhandled queries fall through to the fresh per-attempt path.
	// The session budget derives from the same chained context, so
	// drain cancellation reaches warm solves as typed interruptions;
	// fault injection never reaches the warm path (its engine solves
	// directly, not through the one-shot oracle hook), so session
	// interruptions are always budget-class and never retried.
	if s.sessions != nil && pq.comp != nil {
		if resp, handled := s.executeSession(ctx, kind, pq); handled {
			return resp, nil
		}
	}

	start := time.Now()
	for attempt := 0; ; attempt++ {
		b := budget.New(ctx, pq.eff)
		o := oracle.NewNP().WithBudget(b)
		if s.cfg.FaultRate > 0 {
			// Salted per (request, attempt): a retry re-rolls the fault
			// sequence instead of deterministically re-failing.
			o.WithFaults(faults.NewInjector(s.cfg.FaultRate, s.cfg.FaultSeed+int64(seq)*1000003+int64(attempt)))
		}
		sem, ok := core.New(pq.semName, core.Options{Oracle: o})
		if !ok {
			// Unreachable: decodeQuery checked the registry.
			return QueryResponse{}, core.ErrUnsupported
		}
		var holds bool
		var err error
		switch kind {
		case "literal":
			holds, err = sem.InferLiteral(pq.d, pq.lit)
		case "formula":
			holds, err = sem.InferFormula(pq.d, pq.formula)
		default: // "model"
			holds, err = sem.HasModel(pq.d)
		}
		v, semErr := core.VerdictOf(holds, err)
		if semErr != nil {
			return QueryResponse{}, semErr
		}
		if v.Incomplete && errors.Is(v.Cause, faults.ErrTransient) &&
			attempt < s.cfg.RetryMax && ctx.Err() == nil && !s.draining.Load() {
			s.stats.retries.Add(1)
			time.Sleep(faults.FullJitter(uint64(seq)*0x9e3779b97f4a7c15+uint64(s.cfg.FaultSeed), attempt))
			continue
		}
		return QueryResponse{
			Semantics:  pq.semName,
			Kind:       kind,
			Verdict:    VerdictString(v),
			Holds:      v.Holds,
			Incomplete: v.Incomplete,
			CauseCode:  CauseCode(v.Cause),
			Cause:      causeString(v.Cause),
			Counters:   CountersFrom(o.Counters()),
			Limits:     LimitsFrom(pq.eff),
			Retries:    attempt,
			SolveMS:    float64(time.Since(start)) / float64(time.Millisecond),
		}, nil
	}
}

// executeSession offers one query to the warm session layer. The
// boolean reports whether the layer handled it; false sends the
// caller down the fresh path. A handled query's response carries the
// session's own counters (zero on fast paths and memo hits) and its
// route in Path.
func (s *Server) executeSession(ctx context.Context, kind string, pq parsedQuery) (QueryResponse, bool) {
	var k session.Kind
	switch kind {
	case "literal":
		k = session.KindLiteral
	case "formula":
		k = session.KindFormula
	default:
		k = session.KindModel
	}
	start := time.Now()
	b := budget.New(ctx, pq.eff)
	res, handled := s.sessions.Query(ctx, pq.comp, session.Request{
		Sem:       pq.semName,
		Kind:      k,
		Lit:       pq.lit,
		F:         pq.formula,
		QueryText: pq.qtext,
		Budget:    b,
	})
	if !handled {
		return QueryResponse{}, false
	}
	return sessionResponse(kind, pq, res, start), true
}

// sessionResponse maps a session-layer Result onto the wire shape.
// res.Err is always a typed budget interruption (the layer never
// handles queries its semantics would reject), so VerdictOf can only
// yield a verdict here, never a semantic error.
func sessionResponse(kind string, pq parsedQuery, res session.Result, start time.Time) QueryResponse {
	v, _ := core.VerdictOf(res.Holds, res.Err)
	return QueryResponse{
		Semantics:  pq.semName,
		Kind:       kind,
		Verdict:    VerdictString(v),
		Holds:      v.Holds,
		Incomplete: v.Incomplete,
		CauseCode:  CauseCode(v.Cause),
		Cause:      causeString(v.Cause),
		Counters:   CountersFrom(res.Counters),
		Limits:     LimitsFrom(pq.eff),
		Path:       res.Path,
		SolveMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}
}

func causeString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
