package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// admission is the bounded queue + concurrency limiter in front of the
// solve path. A request first claims a queue slot (shed with
// ShedQueueFull when none are left — the typed 429), then waits for
// one of the MaxConcurrent execution slots; while it waits the server
// may begin draining (shed with ShedDraining, the typed 503), the
// request's own deadline may expire (ShedQueueWait — still a 429:
// no solve work was started, so the client should simply back off and
// retry), or the client may disconnect (ShedClientGone — counted
// separately so disconnects don't masquerade as deadline sheds in
// stats).
//
// The two-level structure is what makes shedding cheap: a full queue
// is detected with one atomic add, so overload costs O(1) per shed
// request no matter how expensive the queries holding the slots are.
type admission struct {
	exec    chan struct{} // execution slots; capacity = MaxConcurrent
	queued  atomic.Int64  // requests holding a queue slot (waiting or executing)
	bound   int64         // queue slots (≥ MaxConcurrent)
	waiting atomic.Int64  // requests blocked on an exec slot (for /healthz)
}

func newAdmission(maxConcurrent, queueDepth int) *admission {
	return &admission{
		exec:  make(chan struct{}, maxConcurrent),
		bound: int64(maxConcurrent + queueDepth),
	}
}

// admitResult is the typed outcome of trying to enter the server.
type admitResult struct {
	release func()        // non-nil iff admitted; returns both slots
	shed    string        // one of the Shed* reasons, "" when admitted
	waited  time.Duration // time spent queued
}

// admit tries to claim a queue slot and then an execution slot.
// drainCtx is cancelled when the server begins draining; reqCtx is the
// request's own context (its deadline bounds the queue wait).
func (a *admission) admit(drainCtx, reqCtx context.Context) admitResult {
	// Shed instantly when the server is already draining.
	select {
	case <-drainCtx.Done():
		return admitResult{shed: ShedDraining}
	default:
	}
	if a.queued.Add(1) > a.bound {
		a.queued.Add(-1)
		return admitResult{shed: ShedQueueFull}
	}
	start := time.Now()
	a.waiting.Add(1)
	defer a.waiting.Add(-1)
	select {
	case a.exec <- struct{}{}:
		return admitResult{
			waited: time.Since(start),
			release: func() {
				<-a.exec
				a.queued.Add(-1)
			},
		}
	case <-drainCtx.Done():
		a.queued.Add(-1)
		return admitResult{shed: ShedDraining, waited: time.Since(start)}
	case <-reqCtx.Done():
		a.queued.Add(-1)
		// Only a deadline firing is the queue-wait shed (back off and
		// retry); any other cancellation means the client went away.
		shed := ShedQueueWait
		if !errors.Is(context.Cause(reqCtx), context.DeadlineExceeded) {
			shed = ShedClientGone
		}
		return admitResult{shed: shed, waited: time.Since(start)}
	}
}

// depth reports (queued, waiting, executing) for health reporting.
func (a *admission) depth() (queued, waiting, executing int64) {
	return a.queued.Load(), a.waiting.Load(), int64(len(a.exec))
}

// queueBound reports the total queue capacity (executing + waiting) —
// the denominator of the planner's cost-shed occupancy check.
func (a *admission) queueBound() int { return int(a.bound) }
