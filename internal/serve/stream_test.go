package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
)

// openStream POSTs a stream request and returns the live response; the
// caller scans its NDJSON body.
func openStream(t *testing.T, ts *httptest.Server, ctx context.Context, req StreamRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/models/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(httpReq)
	if err != nil {
		t.Fatalf("POST /v1/models/stream: %v", err)
	}
	return resp
}

// scanStream reads a whole NDJSON stream: model rows as sorted "a,b"
// keys, plus the terminal record. It fails if the stream ends without
// one or a line fits neither shape.
func scanStream(t *testing.T, resp *http.Response) (rows []string, done StreamDoneRow) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	sawDone := false
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line does not parse: %v\n%s", err, sc.Bytes())
		}
		if line.Done {
			sawDone = true
			if err := json.Unmarshal(sc.Bytes(), &done); err != nil {
				t.Fatalf("terminal line does not parse as StreamDoneRow: %v", err)
			}
			continue
		}
		if line.Model == nil {
			t.Fatalf("stream line is neither a model row nor a terminal record: %s", sc.Bytes())
		}
		sorted := append([]string(nil), line.Model...)
		sort.Strings(sorted)
		rows = append(rows, strings.Join(sorted, ","))
	}
	if !sawDone {
		t.Fatalf("stream ended without a terminal record (read %d rows)", len(rows))
	}
	if !KnownStreamCauses[done.Cause] {
		t.Fatalf("terminal record carries untyped cause %q", done.Cause)
	}
	return rows, done
}

// directModels enumerates the same model set with a plain library call
// — through the same enumerator family the stream would use — and
// returns the sorted-atom keys plus the oracle's NP-call count.
func directModels(t *testing.T, dbText, kind string, parallel bool) ([]string, int64) {
	t.Helper()
	d, err := db.Parse(dbText)
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.NewNP()
	eng := models.NewEngine(d, o)
	var keys []string
	collect := func(m logic.Interp) bool {
		var atoms []string
		for v := 0; v < d.N(); v++ {
			if m.Holds(logic.Atom(v)) {
				atoms = append(atoms, d.Voc.Name(logic.Atom(v)))
			}
		}
		sort.Strings(atoms)
		keys = append(keys, strings.Join(atoms, ","))
		return true
	}
	switch {
	case kind == "minimal" && parallel:
		eng.MinimalModelsPar(0, collect, models.ParOptions{})
	case kind == "minimal":
		eng.MinimalModels(0, collect)
	case parallel:
		eng.EnumerateModelsPar(0, collect, models.ParOptions{})
	default:
		eng.EnumerateModels(0, collect)
	}
	return keys, o.Counters().NPCalls
}

// TestStreamMatchesBuffered: the streamed model set (and, for the
// serial enumerators, the exact NP-call count) is identical to a direct
// buffered library enumeration — for both kinds, with and without the
// parallel worker pool, with and without warm sessions.
func TestStreamMatchesBuffered(t *testing.T) {
	dbText := "a | b. b | c. d :- a. e | a :- c."
	for _, sessions := range []bool{false, true} {
		srv := New(Config{Sessions: sessions})
		ts := httptest.NewServer(srv.Handler())
		for _, kind := range []string{"models", "minimal"} {
			for _, parallel := range []bool{false, true} {
				wantRows, wantNP := directModels(t, dbText, kind, parallel)
				sort.Strings(wantRows)
				resp := openStream(t, ts, context.Background(), StreamRequest{DB: dbText, Kind: kind, Parallel: parallel})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s parallel=%v: status %d", kind, parallel, resp.StatusCode)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
					t.Fatalf("%s: Content-Type %q", kind, ct)
				}
				rows, done := scanStream(t, resp)
				if done.Cause != StreamCauseComplete {
					t.Fatalf("%s parallel=%v: cause %q, want complete", kind, parallel, done.Cause)
				}
				if done.Count != len(rows) {
					t.Fatalf("%s: terminal count %d, emitted %d rows", kind, done.Count, len(rows))
				}
				sort.Strings(rows)
				if fmt.Sprint(rows) != fmt.Sprint(wantRows) {
					t.Fatalf("%s parallel=%v sessions=%v: streamed %v, library %v",
						kind, parallel, sessions, rows, wantRows)
				}
				// NP totals are deterministic per enumerator family: the
				// streamed run must cost exactly what the buffered library
				// run through the same family costs.
				if done.Counters.NPCalls != wantNP {
					t.Fatalf("%s parallel=%v sessions=%v: stream NP %d, library %d",
						kind, parallel, sessions, done.Counters.NPCalls, wantNP)
				}
			}
		}
		ts.Close()
	}
}

// TestStreamLimitAndCap: a client limit and the server-side model cap
// both terminate the stream with the typed "limit" cause.
func TestStreamLimitAndCap(t *testing.T) {
	dbText := "a | b | c | d."
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := openStream(t, ts, context.Background(), StreamRequest{DB: dbText, Limit: 3})
	rows, done := scanStream(t, resp)
	if done.Cause != StreamCauseLimit || len(rows) != 3 || done.Count != 3 {
		t.Fatalf("client limit: cause %q count %d rows %d", done.Cause, done.Count, len(rows))
	}

	capped := New(Config{StreamMaxModels: 2})
	tsCapped := httptest.NewServer(capped.Handler())
	defer tsCapped.Close()
	resp = openStream(t, tsCapped, context.Background(), StreamRequest{DB: dbText})
	rows, done = scanStream(t, resp)
	if done.Cause != StreamCauseLimit || len(rows) != 2 {
		t.Fatalf("server cap: cause %q rows %d", done.Cause, len(rows))
	}
}

// TestStreamBudgetTrip: an NP-call ceiling interrupts the enumeration
// mid-stream; the terminal record carries the typed budget cause and
// the rows already emitted stand.
func TestStreamBudgetTrip(t *testing.T) {
	srv := New(Config{Ceilings: budget.Limits{NPCalls: 3}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := openStream(t, ts, context.Background(), StreamRequest{DB: "a | b | c | d | e."})
	rows, done := scanStream(t, resp)
	if done.Cause != CauseNPCallBudget {
		t.Fatalf("cause %q, want %q", done.Cause, CauseNPCallBudget)
	}
	if len(rows) == 0 {
		t.Fatalf("budget of 3 NP calls emitted no rows before tripping")
	}
}

// TestStreamDrainMidStream: a server drain cuts a running stream at
// drain-BEGIN: the client still receives a terminal record with the
// typed "canceled" cause, and Drain itself completes clean (a stream
// must never hold the drain open for the full timeout).
func TestStreamDrainMidStream(t *testing.T) {
	// One wide clause over 16 atoms: 2^16-1 models, far more than any
	// test will consume — the stream is effectively unbounded.
	atoms := make([]string, 16)
	for i := range atoms {
		atoms[i] = fmt.Sprintf("x%d", i)
	}
	dbText := strings.Join(atoms, " | ") + "."

	srv := New(Config{DrainTimeout: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := openStream(t, ts, context.Background(), StreamRequest{DB: dbText})
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for i := 0; i < 3; i++ {
		if !sc.Scan() {
			t.Fatalf("stream produced only %d rows before dying", i)
		}
	}

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()

	var done StreamDoneRow
	sawDone := false
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line after drain does not parse: %v\n%s", err, sc.Bytes())
		}
		if line.Done {
			sawDone = true
			if err := json.Unmarshal(sc.Bytes(), &done); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sawDone {
		t.Fatalf("drained stream ended without a terminal record")
	}
	if done.Cause != CauseCanceled {
		t.Fatalf("drained stream cause %q, want %q", done.Cause, CauseCanceled)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain was held open by the stream: %v", err)
	}
}

// TestStreamClientGone: a client disconnect mid-stream is classified
// client_gone — it bumps the stream_client_gone stat and leaves every
// breaker untouched (a hangup is the client's doing, not evidence of
// server failure).
func TestStreamClientGone(t *testing.T) {
	atoms := make([]string, 16)
	for i := range atoms {
		atoms[i] = fmt.Sprintf("x%d", i)
	}
	dbText := strings.Join(atoms, " | ") + "."

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	resp := openStream(t, ts, ctx, StreamRequest{DB: dbText})
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("stream produced only %d rows", i)
		}
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.stats.streamClientGone.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream_client_gone never incremented after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.breakerMu.Lock()
	defer srv.breakerMu.Unlock()
	for name, br := range srv.breakers {
		if st, _ := br.snapshot(); st != "closed" {
			t.Fatalf("breaker %q is %q after a client hangup", name, st)
		}
	}
}

// TestStreamRejections: malformed stream requests are typed 400s and a
// draining server sheds with 503; nothing leaks goroutines.
func TestStreamRejections(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := runtime.NumGoroutine()
	for _, tc := range []struct {
		req  StreamRequest
		want string
	}{
		{StreamRequest{DB: "a |"}, ReasonBadRequest},
		{StreamRequest{DB: "a.", Kind: "frobnicate"}, ReasonBadRequest},
		{StreamRequest{}, ReasonBadRequest},
	} {
		resp := openStream(t, ts, context.Background(), tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d", tc.req, resp.StatusCode)
		}
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error != tc.want {
			t.Fatalf("%+v: error %q (%v)", tc.req, er.Error, err)
		}
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := openStream(t, ts, context.Background(), StreamRequest{DB: "a."})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}
