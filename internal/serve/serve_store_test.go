package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"disjunct/internal/store"
)

// storeWorkload is a repeat-DB workload: a general DB (warm sessions)
// and a definite DB (fast path), each queried for the same literals.
var storeWorkload = []struct{ db, sem, lit string }{
	{"a | b. c :- a. c :- b.\n", "GCWA", "c"},
	{"a | b. c :- a. c :- b.\n", "GCWA", "a"},
	{"p. q :- p. r :- q.\n", "GCWA", "r"},
	{"a | b. c :- a. c :- b.\n", "CIRC", "c"},
}

func runStoreWorkload(t *testing.T, ts *httptest.Server) map[string]bool {
	t.Helper()
	verdicts := map[string]bool{}
	for _, q := range storeWorkload {
		status, body := post(t, ts, "/v1/infer/literal", QueryRequest{
			DB: q.db, Semantics: q.sem, Literal: q.lit,
		})
		if status != 200 {
			t.Fatalf("query %+v: status %d body %s", q, status, body)
		}
		qr := decodeQueryResponse(t, body)
		if qr.Incomplete {
			t.Fatalf("query %+v incomplete: %s", q, qr.CauseCode)
		}
		verdicts[q.db+"|"+q.sem+"|"+q.lit] = qr.Holds
	}
	return verdicts
}

func waitReady(t *testing.T, srv *Server) {
	t.Helper()
	for i := 0; i < 200; i++ {
		rr := httptest.NewRecorder()
		srv.handleReadyz(rr, nil)
		if rr.Code == 200 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// TestServeStoreRestartRoundTrip drives a workload through a
// store-backed server, drains it, restarts on the same directory, and
// asserts the restarted server (a) gates readiness on the prewarm,
// (b) serves identical verdicts to both the first process and a
// storeless reference, and (c) compiles nothing cold.
func TestServeStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()

	st1, rec, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Artifacts != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	srv1 := New(Config{Store: st1, DrainTimeout: 5 * time.Second})
	ts1 := httptest.NewServer(srv1.Handler())
	waitReady(t, srv1)
	cold := runStoreWorkload(t, ts1)
	if err := srv1.Drain(context.Background()); err != nil {
		t.Fatalf("drain 1: %v", err)
	}
	ts1.Close()
	if st1.Stats().FlusherRunning {
		t.Fatal("store flusher still running after drain")
	}

	// Storeless reference.
	srvRef := New(Config{Sessions: true, DrainTimeout: 5 * time.Second})
	tsRef := httptest.NewServer(srvRef.Handler())
	ref := runStoreWorkload(t, tsRef)
	srvRef.Drain(context.Background())
	tsRef.Close()

	// Restarted process on the same store dir.
	st2, rec2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Artifacts != 2 {
		t.Fatalf("restart recovered %d artifacts, want 2 (%+v)", rec2.Artifacts, rec2)
	}
	if rec2.Verdicts == 0 {
		t.Fatalf("restart recovered no verdicts (%+v)", rec2)
	}
	srv2 := New(Config{Store: st2, DrainTimeout: 5 * time.Second})
	ts2 := httptest.NewServer(srv2.Handler())
	waitReady(t, srv2)
	warm := runStoreWorkload(t, ts2)

	for k, v := range cold {
		if warm[k] != v {
			t.Fatalf("verdict divergence after restart: %s = %v, cold process said %v", k, warm[k], v)
		}
		if ref[k] != v {
			t.Fatalf("verdict divergence vs storeless reference: %s = %v, reference says %v", k, v, ref[k])
		}
	}

	h := srv2.health()
	if h.Sessions["cold_compiles"] != 0 {
		t.Fatalf("pre-warmed restart ran %d cold compiles, want 0 (sessions %v)", h.Sessions["cold_compiles"], h.Sessions)
	}
	if h.Sessions["compiled_hits"] == 0 {
		t.Fatalf("pre-warmed restart never hit the compile cache (sessions %v)", h.Sessions)
	}
	if h.Sessions["memo_hits"] == 0 {
		t.Fatalf("pre-warmed restart never hit the seeded verdict memo (sessions %v)", h.Sessions)
	}
	if h.Store == nil || h.Store["prewarmed"] != 1 || h.Store["prewarmed_arts"] != 2 {
		t.Fatalf("store health section = %v", h.Store)
	}
	if h.Store["torn_tail"] != 0 || h.Store["write_errors"] != 0 {
		t.Fatalf("clean restart reported store damage: %v", h.Store)
	}

	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
	ts2.Close()
	if st2.Stats().FlusherRunning {
		t.Fatal("store flusher still running after second drain")
	}
}

// TestServeStoreImpliesSessions: configuring a store without Sessions
// still enables the session layer (the store backs its caches).
func TestServeStoreImpliesSessions(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: st})
	waitReady(t, srv)
	if srv.sessions == nil {
		t.Fatal("Store did not force the session layer on")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServeHealthzStoreSection: the store section appears on a
// store-backed server with the full key set, and is absent otherwise.
func TestServeHealthzStoreSection(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: st})
	waitReady(t, srv)
	ts := httptest.NewServer(srv.Handler())
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"artifacts", "verdicts", "interns", "queued_writes",
		"flushed_writes", "flushes", "compactions", "write_errors", "size_bytes",
		"torn_tail", "dropped_bytes", "flusher_running", "prewarmed", "prewarmed_arts"} {
		if _, ok := h.Store[key]; !ok {
			t.Fatalf("store health section missing %q: %v", key, h.Store)
		}
	}
	srv.Drain(context.Background())
	ts.Close()

	srv2 := New(Config{Sessions: true})
	if h2 := srv2.health(); h2.Store != nil {
		t.Fatalf("storeless server reports a store section: %v", h2.Store)
	}
	srv2.Drain(context.Background())
}

// TestLoadRecordReplay: a recorded run replays cleanly against itself,
// a replay with a different workload shape is an untyped failure, and
// a tampered verdict file surfaces as divergence.
func TestLoadRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("load run")
	}
	srv := New(Config{Sessions: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	path := filepath.Join(t.TempDir(), "verdicts.json")
	base := LoadConfig{
		BaseURL: ts.URL, Rate: 400, Requests: 40, Workers: 8,
		Seed: 7, MaxAtoms: 4, HotDBs: 3,
		Limits: LimitsJSON{DeadlineMS: 10000},
	}

	recCfg := base
	recCfg.RecordPath = path
	rec := RunLoad(recCfg)
	if !rec.Clean() || rec.Completed == 0 {
		t.Fatalf("record run not clean: %s\n%v", rec.String(), rec.UntypedNotes)
	}

	repCfg := base
	repCfg.ReplayPath = path
	rep := RunLoad(repCfg)
	if !rep.Clean() {
		t.Fatalf("replay run not clean: %s\n%v %v", rep.String(), rep.UntypedNotes, rep.DivergeNotes)
	}
	if rep.Replayed == 0 {
		t.Fatal("replay compared zero verdicts")
	}

	// Shape mismatch: a different seed must refuse the file, typed as
	// untyped (the harness hard-fails rather than silently comparing
	// different workloads).
	badShape := repCfg
	badShape.Seed = 8
	if r := RunLoad(badShape); r.Untyped == 0 || r.Replayed != 0 {
		t.Fatalf("shape-mismatched replay accepted: %s", r.String())
	}

	// Tampering: flip every recorded verdict — every comparison must
	// diverge.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lg verdictLog
	if err := json.Unmarshal(data, &lg); err != nil {
		t.Fatal(err)
	}
	for i := range lg.Verdicts {
		lg.Verdicts[i].Holds = !lg.Verdicts[i].Holds
	}
	flipped, _ := json.Marshal(lg)
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	r := RunLoad(repCfg)
	if r.Divergent == 0 || r.Divergent != r.Replayed {
		t.Fatalf("tampered replay: divergent=%d replayed=%d", r.Divergent, r.Replayed)
	}
}
