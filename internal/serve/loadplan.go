package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
)

// Planner A/B overload harness: the same mixed workload — cheap
// definite fast-path queries interleaved with expensive cold
// Σ₂ᵖ-class queries — offered at multiples of the measured saturation
// rate against two in-process servers that differ only in
// Config.Planner. Under FIFO the expensive queries fill the bounded
// queue and the cheap traffic sheds right along with them; with
// cost-aware admission the expensive tier sheds first (typed
// shed_cost) and the cheap tier keeps completing. The harness is what
// `ddbload -abplanner` runs and what EXPERIMENTS.md records.

// PlannerABConfig shapes one overload A/B comparison.
type PlannerABConfig struct {
	// Multipliers are the saturation multiples to sweep (default
	// 1, 2, 4, 8).
	Multipliers []float64
	// Requests offered per leg (default 240).
	Requests int
	Seed     int64
	// MaxAtoms bounds the expensive instances' vocabulary (default 48 —
	// at that size and ~1.5n clause density a quarter to a third of the
	// Πᵖ₂ literal queries cost tens of milliseconds to the full
	// deadline, the heavy tail that makes FIFO slots a scarce
	// resource).
	MaxAtoms int
	// CheapEvery interleaves one cheap definite job every N jobs
	// (default 2 — half the offered load is cheap).
	CheapEvery int
	// MaxConcurrent / QueueDepth shape the server under test (defaults
	// 2 and 2: small on purpose, so saturation is reachable — and the
	// queue shallow on purpose, because a deep buffer masks the
	// admission policy: when every arrival can wait, FIFO and
	// cost-aware shedding converge, while a shallow queue makes each
	// admitted Σ₂ᵖ monster evict real cheap traffic under FIFO).
	MaxConcurrent int
	QueueDepth    int
	// SatRate is the assumed 1× saturation rate in requests/second;
	// 0 measures it with a calibration leg (FIFO server, high offered
	// rate) and uses that leg's completed throughput.
	SatRate float64
	// DeadlineMS is the per-request budget deadline (default 2000):
	// queue waits past it shed typed instead of hanging the sweep.
	DeadlineMS int64
	// Verify cross-checks every completed verdict against a direct
	// library call (the zero-divergence acceptance gate).
	Verify bool
}

func (c PlannerABConfig) withDefaults() PlannerABConfig {
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{1, 2, 4, 8}
	}
	if c.Requests <= 0 {
		c.Requests = 240
	}
	if c.MaxAtoms < 4 {
		c.MaxAtoms = 48
	}
	if c.CheapEvery <= 0 {
		c.CheapEvery = 2
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.MaxConcurrent
	}
	if c.DeadlineMS <= 0 {
		c.DeadlineMS = 2000
	}
	return c
}

// PlannerABRow is one saturation multiple's outcome pair.
type PlannerABRow struct {
	Multiplier float64    `json:"multiplier"`
	Rate       float64    `json:"rate"` // offered requests/second
	FIFO       LoadReport `json:"fifo"` // planner off
	CostAware  LoadReport `json:"cost_aware"`
	// Planner is the cost-aware server's /healthz planner section
	// after the leg (shed_cost, routing, portfolio histogram).
	Planner map[string]int64 `json:"planner"`
}

// Speedup is the completed-throughput ratio cost-aware / FIFO.
func (r PlannerABRow) Speedup() float64 {
	if r.FIFO.Completed == 0 {
		return 0
	}
	return float64(r.CostAware.Completed) / float64(r.FIFO.Completed)
}

// genABJobs builds the mixed workload: expensive jobs are fresh (cold
// every request — no estimate, no warm session) positive disjunctive
// databases with literal queries (Πᵖ₂ for the minimal-model family);
// cheap jobs are definite-fragment literal queries answered by the
// fixpoint fast path in microseconds. Pure function of the seed.
func genABJobs(cfg PlannerABConfig) []loadJob {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// DSM literal inference is Πᵖ₂ AND outside the warm-session family,
	// so every expensive job takes the fresh path cold — the warm
	// minimal-model engines would otherwise absorb these instances in
	// microseconds and no leg would ever saturate. (PWS/PMS are also
	// outside the warm family but their dominant work runs off-oracle,
	// so the per-request deadline could not interrupt a monster.)
	expensiveSems := []string{"DSM"}

	// A small pool of definite chain programs: "c0. c1 :- c0. …" —
	// always FragDefinite, always fast-path.
	cheapDBs := make([]string, 4)
	for p := range cheapDBs {
		m := 3 + p
		var b strings.Builder
		fmt.Fprintf(&b, "c0.")
		for i := 1; i < m; i++ {
			fmt.Fprintf(&b, " c%d :- c%d.", i, i-1)
		}
		cheapDBs[p] = b.String()
	}

	jobs := make([]loadJob, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		var job loadJob
		job.idx = i
		job.kind = "literal"
		if i%cfg.CheapEvery == 0 {
			job.sem = expensiveSems[rng.Intn(len(expensiveSems))]
			job.dbText = cheapDBs[rng.Intn(len(cheapDBs))]
			job.literal = fmt.Sprintf("c%d", rng.Intn(3))
		} else {
			// Dense positive disjunctive instance, distinct per job so
			// every one is cold for both the session layer and the
			// estimator.
			n := cfg.MaxAtoms - rng.Intn(2)
			cl := 3*n/2 + rng.Intn(n/2+1)
			d := gen.Random(rng, gen.Positive(n, cl))
			parsed, err := db.Parse(d.String())
			if err != nil || parsed.N() == 0 {
				continue
			}
			job.sem = expensiveSems[rng.Intn(len(expensiveSems))]
			job.dbText = parsed.String()
			atom := parsed.Voc.Name(logic.Atom(rng.Intn(parsed.N())))
			if rng.Intn(2) == 0 {
				job.literal = "-" + atom
			} else {
				job.literal = atom
			}
		}
		body, _ := json.Marshal(QueryRequest{
			Semantics: job.sem,
			DB:        job.dbText,
			Literal:   job.literal,
			Limits:    LimitsJSON{DeadlineMS: cfg.DeadlineMS},
		})
		job.body = body
		jobs = append(jobs, job)
	}
	return jobs
}

// runABJobs is the compact open-loop runner behind the A/B legs: same
// pacing, classification, and verification as RunLoad, without the
// record/replay machinery.
func runABJobs(baseURL string, jobs []loadJob, rate float64, workers int, verify bool) LoadReport {
	report := LoadReport{ByCause: map[string]int{}, ByShed: map[string]int{}}
	var mu sync.Mutex
	note := func(list *[]string, format string, args ...any) {
		if len(*list) < 5 {
			*list = append(*list, fmt.Sprintf(format, args...))
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	routers := newRouterSet(baseURL, nil)
	ch := make(chan loadJob, len(jobs))
	// Completed verdicts are collected during the timed window and
	// cross-checked after it: a reference solve can cost seconds, and
	// running it inside a worker would throttle the offered load and
	// inflate the measured elapsed time.
	type done struct {
		job   loadJob
		holds bool
	}
	var completed []done
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				kind, status, qr, er, err := routers.doRequest(client, job)
				mu.Lock()
				switch kind {
				case outcomeCompleted:
					report.Completed++
					if verify {
						completed = append(completed, done{job, qr.Holds})
					}
				case outcomeIncomplete:
					report.Incomplete++
					report.ByCause[qr.CauseCode]++
				case outcomeShed429:
					report.Shed429++
					report.ByShed[er.Error]++
				case outcomeShed503:
					report.Shed503++
					report.ByShed[er.Error]++
				case outcomeRejected:
					report.Rejected++
				default:
					report.Untyped++
					note(&report.UntypedNotes, "status=%d err=%v sem=%s kind=%s", status, err, job.sem, job.kind)
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	interval := time.Duration(float64(time.Second) / rate)
	next := start
	for _, job := range jobs {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		ch <- job
		next = next.Add(interval)
	}
	close(ch)
	wg.Wait()
	report.Offered = len(jobs)
	report.Elapsed = time.Since(start)
	for _, d := range completed {
		want, refErr := referenceVerdict(d.job)
		if refErr != nil {
			report.Untyped++
			note(&report.UntypedNotes, "reference error for %s %s: %v", d.job.sem, d.job.kind, refErr)
		} else if want != d.holds {
			report.Divergent++
			note(&report.DivergeNotes, "%s %s on %q: served=%v direct=%v",
				d.job.sem, d.job.kind, d.job.literal, d.holds, want)
		}
	}
	return report
}

// abLeg runs one leg: fresh in-process server, workload, healthz
// snapshot, drain.
func abLeg(cfg PlannerABConfig, jobs []loadJob, rate float64, planner bool) (LoadReport, map[string]int64) {
	srv := New(Config{
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDepth:    cfg.QueueDepth,
		Sessions:      true,
		Planner:       planner,
		DrainTimeout:  2 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	rep := runABJobs(ts.URL, jobs, rate, 4*(cfg.MaxConcurrent+cfg.QueueDepth), cfg.Verify)
	var ps map[string]int64
	if h, err := FetchHealth(&http.Client{Timeout: 5 * time.Second}, ts.URL); err == nil {
		ps = h.Planner
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Drain(ctx)
	cancel()
	ts.Close()
	return rep, ps
}

// RunPlannerAB sweeps the saturation multiples, each leg pair sharing
// one identical job list, and returns one row per multiple. When
// cfg.SatRate is zero a calibration leg (FIFO server, offered far past
// capacity) measures the 1× rate first.
func RunPlannerAB(cfg PlannerABConfig) ([]PlannerABRow, float64) {
	cfg = cfg.withDefaults()
	jobs := genABJobs(cfg)
	sat := cfg.SatRate
	if sat <= 0 {
		// The calibration leg is unreported, so skip verification there:
		// its only output is the completed-throughput measurement.
		calCfg := cfg
		calCfg.Verify = false
		rep, _ := abLeg(calCfg, jobs, 500, false)
		sat = float64(rep.Completed) / rep.Elapsed.Seconds()
		if sat < 1 {
			sat = 1
		}
	}
	rows := make([]PlannerABRow, 0, len(cfg.Multipliers))
	for _, m := range cfg.Multipliers {
		rate := sat * m
		fifo, _ := abLeg(cfg, jobs, rate, false)
		aware, ps := abLeg(cfg, jobs, rate, true)
		rows = append(rows, PlannerABRow{
			Multiplier: m, Rate: rate,
			FIFO: fifo, CostAware: aware, Planner: ps,
		})
	}
	return rows, sat
}
