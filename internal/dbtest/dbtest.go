// Package dbtest holds parsing helpers for test code. The production
// packages expose only error-returning parsers (db.Parse,
// ground.ParseProgram); tests that embed known-good sources use these
// panicking wrappers instead.
package dbtest

import (
	"disjunct/internal/db"
	"disjunct/internal/ground"
)

// MustParse parses a database source, panicking on error. Test-only:
// production call sites handle db.Parse errors.
func MustParse(input string) *db.DB {
	d, err := db.Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}

// MustParseProgram parses a non-ground program, panicking on error.
func MustParseProgram(input string) *ground.Program {
	p, err := ground.ParseProgram(input)
	if err != nil {
		panic(err)
	}
	return p
}
