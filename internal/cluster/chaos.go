package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"disjunct/internal/faults"
)

// ChaosTransport applies a faults.NodePlan at the transport level: it
// wraps the router's RoundTripper and, once armed against a victim
// worker, makes that worker's traffic fail the way the plan says —
// refused connections for a partition, injected delay for a slow
// node. Kill is not simulated here: a killed worker really dies (the
// in-process harness closes its listener abruptly; the smoke script
// SIGKILLs the process), so the transport sees genuine connection
// errors with no simulation gap.
type ChaosTransport struct {
	base http.RoundTripper

	mu      sync.Mutex
	kind    faults.NodeKind
	victim  string // host:port of the afflicted worker; "" = none
	healed  bool
	delayed int64
	refused int64
}

// NewChaosTransport wraps a base transport (nil = http.DefaultTransport).
func NewChaosTransport(base http.RoundTripper) *ChaosTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &ChaosTransport{base: base, victim: ""}
}

// Afflict arms the chaos against one worker host (the URL's host:port
// part). Idempotent; Heal disarms.
func (c *ChaosTransport) Afflict(host string, kind faults.NodeKind) {
	c.mu.Lock()
	c.victim, c.kind, c.healed = host, kind, false
	c.mu.Unlock()
}

// Heal lifts the affliction (the partition ends, the node speeds up).
func (c *ChaosTransport) Heal() {
	c.mu.Lock()
	c.healed = true
	c.mu.Unlock()
}

// Counts reports how many requests were delayed and refused.
func (c *ChaosTransport) Counts() (delayed, refused int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delayed, c.refused
}

func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	victim, kind, healed := c.victim, c.kind, c.healed
	c.mu.Unlock()
	if healed || victim == "" || req.URL.Host != victim {
		return c.base.RoundTrip(req)
	}
	switch kind {
	case faults.NodePartition:
		c.mu.Lock()
		c.refused++
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: connection refused (injected partition of %s)", victim)
	case faults.NodeSlow:
		c.mu.Lock()
		c.delayed++
		c.mu.Unlock()
		select {
		case <-time.After(faults.NodeSlowDelay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return c.base.RoundTrip(req)
	default:
		return c.base.RoundTrip(req)
	}
}
