package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"disjunct/internal/serve"
)

// Router replication. N routers share one ring by gossiping
// epoch-tagged membership and node-health hints; there is no leader
// and no consensus round. Correctness rests on two facts: (1) the
// membership Merge is a join-semilattice (monotonic epoch wins, hash
// tie-break), so every router converges to the same member set under
// any gossip delivery order, duplication, or loss-then-retry; and
// (2) routers are stateless — a router with a stale ring still
// produces correct verdicts, it just routes some keys to a node that
// no longer (or does not yet) hold their warm state, costing cache
// misses, never wrong answers.
//
// Each exchange is push-pull: the initiator POSTs its GossipState, the
// receiver merges and replies with its own, and the initiator merges
// the reply. One-sided peering therefore suffices for convergence —
// the second router of a pair need not list the first.
//
// Health hints ride along so a router that just adopted a new member
// routes sensibly before its first firsthand probe. Firsthand beats
// secondhand: gossiped down/draining/breaker state is applied only to
// nodes this router has never probed itself (probed == false).

// NodeGossip is one worker's health hint inside a gossip message.
type NodeGossip struct {
	Down         bool     `json:"down"`
	Draining     bool     `json:"draining"`
	OpenBreakers []string `json:"open_breakers,omitempty"`
}

// GossipState is the gossip wire document: the sender's epoch-tagged
// membership plus its current health view.
type GossipState struct {
	Epoch   uint64                `json:"epoch"`
	Members []string              `json:"members"`
	Health  map[string]NodeGossip `json:"health,omitempty"`
}

// gossipState snapshots this router's gossip document.
func (r *Router) gossipState() GossipState {
	m := r.membership()
	gs := GossipState{Epoch: m.Epoch, Members: m.Members, Health: map[string]NodeGossip{}}
	r.nodeMu.RLock()
	for name, n := range r.nodes {
		if !n.probed.Load() {
			continue // only gossip firsthand knowledge
		}
		gs.Health[name] = NodeGossip{
			Down:         n.down.Load(),
			Draining:     n.draining.Load(),
			OpenBreakers: n.openBreakerList(),
		}
	}
	r.nodeMu.RUnlock()
	return gs
}

// mergeGossip folds a peer's state into this router: membership via
// the semilattice merge, health hints only onto never-probed nodes.
func (r *Router) mergeGossip(in GossipState) {
	r.stats.gossipRecv.Add(1)
	r.adoptMembership(Membership{Epoch: in.Epoch, Members: in.Members})
	for name, hint := range in.Health {
		n := r.node(name)
		if n == nil || n.probed.Load() {
			continue
		}
		// Secondhand fill-in for a node we have no firsthand view of.
		// probed stays false: the next local probe overwrites all of it.
		n.down.Store(hint.Down)
		n.draining.Store(hint.Draining)
		open := make(map[string]bool, len(hint.OpenBreakers))
		for _, sem := range hint.OpenBreakers {
			open[sem] = true
		}
		n.setOpenBreakers(open)
	}
}

// handleGossip is POST /v1/cluster/gossip: merge the sender's state,
// reply with our own (post-merge, so the initiator sees the winner).
func (r *Router) handleGossip(w http.ResponseWriter, req *http.Request) {
	var in GossipState
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: "gossip body: " + err.Error(),
		})
		return
	}
	r.mergeGossip(in)
	data, _ := json.Marshal(r.gossipState())
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// gossipOnce runs one push-pull exchange with a peer.
func (r *Router) gossipOnce(ctx context.Context, peer string) {
	r.stats.gossipSent.Add(1)
	payload, err := json.Marshal(r.gossipState())
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, r.cfg.GossipInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/cluster/gossip", bytes.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return // unreachable peer: retried next round, convergence only delayed
	}
	var reply GossipState
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply)
	resp.Body.Close()
	if decErr != nil || resp.StatusCode != http.StatusOK {
		return
	}
	r.mergeGossip(reply)
}

// gossipAll runs one exchange with every peer — called eagerly after a
// membership mutation so joins and drains propagate in one round trip
// instead of a gossip period.
func (r *Router) gossipAll(ctx context.Context) {
	for _, p := range r.Peers() {
		r.gossipOnce(ctx, p)
	}
}

// gossipLoop drives the periodic anti-entropy exchanges, jittered per
// (seed, peer) with the same discipline as the probe schedule.
func (r *Router) gossipLoop() {
	defer r.probeWG.Done()
	t := time.NewTimer(0)
	if !t.Stop() {
		<-t.C
	}
	for round := uint64(0); ; round++ {
		t.Reset(ProbeDelay(r.cfg.Seed, "gossip", round, r.cfg.GossipInterval))
		select {
		case <-r.stopped:
			t.Stop()
			return
		case <-t.C:
		}
		r.gossipAll(context.Background())
	}
}
