package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"disjunct/internal/keyspace"
	"disjunct/internal/serve"
	"disjunct/internal/session"
)

// Warm joins. A node added to the ring cold re-pays every NP-oracle
// call for the keyspace slice it inherits — exactly the work the
// session/store layers exist to avoid. JoinNode therefore runs the
// drain handoff in reverse before the ring ever flips:
//
//  1. wait for the joiner's /readyz (its store prewarm must finish);
//  2. compute the slice the joiner WILL own on a hypothetical ring
//     (current members + joiner) — pure arithmetic, no ring mutation;
//  3. ask every live current member to export its warm artifacts and
//     verdict memos restricted to that slice (the ?ranges= form of
//     /v1/handoff/export), dedup across donors;
//  4. import the union into the joiner — the worker's import path
//     re-verifies fingerprints and fragments, and anything it rejects
//     is simply recomputed on first touch;
//  5. only then flip the ring (AddNode bumps the membership epoch) and
//     gossip the new epoch eagerly to peer routers.
//
// The gate ordering means a request can never be routed to the joiner
// before its prewarmed slice is in place: until step 5 the ring does
// not contain it. JoinStateReport's states ("waiting", "exporting",
// "importing", "flipped", "failed") are the closed join taxonomy.

// JoinReport summarizes one warm join.
type JoinReport struct {
	Node  string `json:"node"`
	State string `json:"state"` // terminal: "flipped" | "failed"
	Epoch uint64 `json:"epoch"` // membership epoch after the flip
	// Donors maps each exporting member to artifacts+verdicts it
	// contributed (pre-dedup).
	Donors map[string]int `json:"donors"`
	// Artifacts/Verdicts are the deduped counts shipped to the joiner;
	// ImportedArtifacts/ImportedVerdicts are what its import accepted
	// after fingerprint/fragment cross-checks.
	Artifacts         int `json:"artifacts"`
	Verdicts          int `json:"verdicts"`
	ImportedArtifacts int `json:"imported_artifacts"`
	ImportedVerdicts  int `json:"imported_verdicts"`
}

// Join states (the closed taxonomy; JoinReport.State holds a terminal
// one).
const (
	JoinStateWaiting   = "waiting"   // polling the joiner's /readyz
	JoinStateExporting = "exporting" // collecting donor slices
	JoinStateImporting = "importing" // shipping the union to the joiner
	JoinStateFlipped   = "flipped"   // ring updated; joiner live
	JoinStateFailed    = "failed"    // no ring change happened
)

// JoinNode warm-joins a worker into the cluster. On any failure before
// the flip the ring is untouched — a failed join leaves the cluster
// exactly as it was.
func (r *Router) JoinNode(ctx context.Context, baseURL string) (JoinReport, error) {
	name := strings.TrimSuffix(baseURL, "/")
	rep := JoinReport{Node: name, State: JoinStateFailed, Donors: map[string]int{}}
	if r.node(name) != nil {
		return rep, fmt.Errorf("cluster: %q is already a member", name)
	}

	// 1. The joiner must be ready (prewarmed from its own store, not
	// draining) before we ship state at it.
	rep.State = JoinStateWaiting
	if err := r.awaitReady(ctx, name); err != nil {
		rep.State = JoinStateFailed
		return rep, fmt.Errorf("cluster: joiner %q not ready: %w", name, err)
	}

	// 2. The joiner's future slice, computed on a hypothetical ring.
	// Sequence-consistency makes this exact: the keys the joiner will
	// own after the flip are precisely those whose owner on
	// (members ∪ {joiner}) is the joiner.
	members := r.ring.Members()
	hypo := NewRing(r.cfg.Replicas)
	hypo.SetMembers(append(append([]string{}, members...), name))
	future := hypo.OwnedRanges(name)

	// 3. Collect each live donor's intersection with that slice.
	rep.State = JoinStateExporting
	var union session.Handoff
	seenArt := map[string]bool{}
	seenVerd := map[string]bool{}
	for _, donor := range members {
		dn := r.node(donor)
		if dn == nil || dn.down.Load() {
			continue
		}
		h, err := r.exportRanges(ctx, dn, future)
		if err != nil {
			continue // a dead donor's keys are recomputed, never guessed
		}
		rep.Donors[donor] = len(h.Artifacts) + len(h.Verdicts)
		for _, a := range h.Artifacts {
			k := a.Raw + "\x00" + a.Key
			if !seenArt[k] {
				seenArt[k] = true
				union.Artifacts = append(union.Artifacts, a)
			}
		}
		for _, v := range h.Verdicts {
			k := v.Raw + "\x00" + v.Sem + "\x00" + v.MemoKey
			if !seenVerd[k] {
				seenVerd[k] = true
				union.Verdicts = append(union.Verdicts, v)
			}
		}
	}
	rep.Artifacts = len(union.Artifacts)
	rep.Verdicts = len(union.Verdicts)

	// 4. Import gates the flip: the joiner must have answered — an
	// unreachable joiner aborts with the ring untouched. A reachable
	// joiner that rejects some entries (fingerprint mismatch) is fine:
	// it recomputes those on first touch.
	rep.State = JoinStateImporting
	if rep.Artifacts+rep.Verdicts > 0 {
		ir, err := r.importHandoff(ctx, name, union)
		if err != nil {
			rep.State = JoinStateFailed
			return rep, fmt.Errorf("cluster: import into joiner %q: %w", name, err)
		}
		rep.ImportedArtifacts = ir.Artifacts
		rep.ImportedVerdicts = ir.Verdicts
		r.stats.joinArts.Add(int64(ir.Artifacts))
		r.stats.joinVerds.Add(int64(ir.Verdicts))
	}

	// 5. Flip and tell the peers.
	r.AddNode(name)
	rep.State = JoinStateFlipped
	rep.Epoch = r.epoch.Load()
	r.stats.joins.Add(1)
	r.gossipAll(ctx)
	return rep, nil
}

// awaitReady polls the node's /readyz until 200, the context dies, or
// the poll budget (20× probe interval) runs out.
func (r *Router) awaitReady(ctx context.Context, url string) error {
	ctx, cancel := context.WithTimeout(ctx, 20*r.cfg.ProbeInterval)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := r.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.cfg.ProbeInterval / 5):
		}
	}
}

// exportRanges fetches one donor's warm state restricted to a keyspace
// slice.
func (r *Router) exportRanges(ctx context.Context, n *node, ranges keyspace.Ranges) (session.Handoff, error) {
	var h session.Handoff
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		n.url+"/v1/handoff/export?ranges="+ranges.String(), nil)
	if err != nil {
		return h, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.fail(n)
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("export: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&h); err != nil {
		return h, err
	}
	return h, nil
}

// importHandoff ships a handoff into a worker (by URL; the worker need
// not be a ring member yet).
func (r *Router) importHandoff(ctx context.Context, url string, h session.Handoff) (serve.HandoffImportResponse, error) {
	var ir serve.HandoffImportResponse
	payload, err := json.Marshal(h)
	if err != nil {
		return ir, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/handoff/import", bytes.NewReader(payload))
	if err != nil {
		return ir, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return ir, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ir, fmt.Errorf("import: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ir); err != nil {
		return ir, err
	}
	return ir, nil
}

// handleJoin is the HTTP form of JoinNode: POST /v1/cluster/join?node=<url>.
func (r *Router) handleJoin(w http.ResponseWriter, req *http.Request) {
	target := req.URL.Query().Get("node")
	if target == "" {
		writeError(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: "missing ?node=<base url>",
		})
		return
	}
	rep, err := r.JoinNode(req.Context(), target)
	if err != nil {
		writeError(w, http.StatusConflict, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: err.Error(),
		})
		return
	}
	data, _ := json.Marshal(rep)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
