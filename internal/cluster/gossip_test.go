package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"disjunct/internal/serve"

	_ "disjunct/internal/semantics/all"
)

// TestProbeDelayDesync is the jitter contract: every delay falls in
// [interval/2, 3·interval/2), the schedule is deterministic per seed,
// and two routers with different seeds draw schedules that disagree on
// most rounds — so replica probes (and gossip ticks) never lock into
// synchronized thundering herds against the same worker.
func TestProbeDelayDesync(t *testing.T) {
	const interval = 100 * time.Millisecond
	const rounds = 64
	differ := 0
	for round := uint64(0); round < rounds; round++ {
		d1 := ProbeDelay(1, "http://w1", round, interval)
		d2 := ProbeDelay(2, "http://w1", round, interval)
		for _, d := range []time.Duration{d1, d2} {
			if d < interval/2 || d >= interval+interval/2 {
				t.Fatalf("round %d: delay %v outside [%v, %v)", round, d, interval/2, interval+interval/2)
			}
		}
		if d1 != ProbeDelay(1, "http://w1", round, interval) {
			t.Fatalf("round %d: ProbeDelay not deterministic for a fixed seed", round)
		}
		if d1 != d2 {
			differ++
		}
	}
	if differ < rounds/2 {
		t.Fatalf("seeds 1 and 2 agree on %d of %d rounds — schedules not decorrelated", rounds-differ, rounds)
	}
	// Different nodes under one seed must also desynchronize, or one
	// router would probe its whole fleet in lockstep.
	if ProbeDelay(1, "http://w1", 0, interval) == ProbeDelay(1, "http://w2", 0, interval) &&
		ProbeDelay(1, "http://w1", 1, interval) == ProbeDelay(1, "http://w2", 1, interval) {
		t.Fatal("per-node schedules identical across nodes for the same seed")
	}
}

// TestGossipReplicatedRing drives the live replication path: a primary
// and a replica router (different seeds, one-sided peering) share one
// ring; a drain orchestrated on the primary and a warm join
// orchestrated on the replica must each propagate to the other side,
// ending with identical epoch-tagged member sets on both.
func TestGossipReplicatedRing(t *testing.T) {
	cfg := fastProbe(RouterConfig{Seed: 31, GossipInterval: 50 * time.Millisecond})
	l := StartLocal(3, serve.Config{Sessions: true}, cfg)
	defer l.Close()
	peer, _ := l.AddRouterPeer(fastProbe(RouterConfig{Seed: 32, GossipInterval: 50 * time.Millisecond}))

	sameRing := func() bool {
		a, b := l.Router.membership(), peer.membership()
		return a.Epoch == b.Epoch && a.Hash() == b.Hash()
	}
	await := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("%s: primary=%+v replica=%+v", what, l.Router.membership(), peer.membership())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	await("initial rings never converged", sameRing)

	// Drain on the primary: the eager post-mutation gossip should carry
	// the flip to the replica well within the wait budget.
	victim := l.Workers[0]
	if _, err := l.Router.DrainNode(drainCtx(), victim.URL()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	await("drain never reached the replica", func() bool {
		return peer.ring.Size() == 2 && sameRing()
	})

	// Warm join orchestrated on the REPLICA — any router may mutate the
	// membership; the primary must adopt the higher epoch.
	w := l.StartWorker()
	rep, err := peer.JoinNode(context.Background(), w.URL())
	if err != nil {
		t.Fatalf("join via replica: %v", err)
	}
	if rep.State != JoinStateFlipped {
		t.Fatalf("join state = %q, want %q", rep.State, JoinStateFlipped)
	}
	await("join never reached the primary", func() bool {
		return l.Router.ring.Size() == 3 && sameRing()
	})
	found := false
	for _, m := range l.Router.Nodes() {
		if m == w.URL() {
			found = true
		}
	}
	if !found {
		t.Fatalf("primary members %v lack the joined node %s", l.Router.Nodes(), w.URL())
	}
	if g := l.Router.health().Stats["gossip_received"] + l.Router.health().Stats["gossip_sent"]; g == 0 {
		t.Fatal("no gossip exchanges recorded on the primary")
	}
}

// TestGossipFirsthandBeatsSecondhand pins the health-hint precedence:
// a gossiped hint fills in state for a node this router has never
// probed, but once a firsthand probe has run, later hints are ignored.
func TestGossipFirsthandBeatsSecondhand(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Drain(drainCtx())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Quiet intervals: no probe or gossip tick fires during the test.
	r := NewRouter(RouterConfig{ProbeInterval: time.Hour, GossipInterval: time.Hour, Seed: 9}, []string{hs.URL})
	defer r.Close()

	hint := GossipState{
		Epoch:   r.Epoch(),
		Members: r.Nodes(),
		Health:  map[string]NodeGossip{hs.URL: {Down: true, OpenBreakers: []string{"GCWA"}}},
	}
	r.mergeGossip(hint)
	nh := r.health().Nodes[hs.URL]
	if nh.Up || nh.Probed {
		t.Fatalf("secondhand hint not applied to unprobed node: %+v", nh)
	}
	if len(nh.OpenBreakers) != 1 || nh.OpenBreakers[0] != "GCWA" {
		t.Fatalf("secondhand breaker hint lost: %+v", nh)
	}

	// Firsthand probe: the live worker answers, the node recovers, and
	// the stale hint can no longer downgrade it.
	r.probeOne(r.node(hs.URL))
	nh = r.health().Nodes[hs.URL]
	if !nh.Up || !nh.Probed || len(nh.OpenBreakers) != 0 {
		t.Fatalf("probe did not restore firsthand state: %+v", nh)
	}
	r.mergeGossip(hint)
	if nh = r.health().Nodes[hs.URL]; !nh.Up {
		t.Fatal("secondhand gossip overrode a firsthand probe")
	}

	// Only firsthand knowledge is gossiped out: the snapshot must list
	// the probed node and nothing speculative.
	gs := r.gossipState()
	if _, ok := gs.Health[hs.URL]; !ok {
		t.Fatalf("probed node missing from outgoing gossip: %+v", gs.Health)
	}
}
