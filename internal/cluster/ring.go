// Package cluster is the horizontal tier over internal/serve: a
// stateless HTTP router that consistent-hash-routes inference requests
// onto a set of ddbserve workers, keyed by the compiled database's
// fingerprint so warm sessions, verdict memos, and coalescing keep
// their hit rates no matter how many nodes serve the keyspace.
//
// The paper's complexity landscape makes the locality worth the
// machinery: a Σ₂ᵖ-cell query against a warm session costs a memo
// lookup, against a cold node it costs a fresh exponential-in-the-
// worst-case solve. Routing therefore optimizes for key affinity
// first, and the failure machinery — per-node health probes, node
// breakers, bounded failover with seeded jitter, drain-with-handoff —
// preserves the serve layer's typed-outcome contract across process
// boundaries: every request either completes with a verdict identical
// to a single-node reference, fails over transparently, or sheds with
// a typed reason. No outcome is ever untyped.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"disjunct/internal/keyspace"
)

// The ring's placement function lives in internal/keyspace so the
// serve layer's handoff slicing and the join orchestration agree
// byte-for-byte on where a key lives. These aliases keep the call
// sites short.
func fnv64a(s string) uint64     { return keyspace.FNV64a(s) }
func splitmix64(x uint64) uint64 { return keyspace.Splitmix64(x) }
func hashKey(key string) uint64  { return keyspace.HashKey(key) }

// Ring is a consistent-hash ring with virtual nodes. Membership
// changes remap only the slice of the keyspace owned by the node that
// joined or left — the property the ring-stability test gates — so a
// failover or drain disturbs the session locality of exactly the
// departed node's keys and nobody else's.
//
// All methods are goroutine-safe. The zero value is not usable; use
// NewRing.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per member: high enough
// that a 3-node ring splits the keyspace within a few percent of
// evenly, low enough that membership changes rebuild in microseconds.
const DefaultReplicas = 64

// NewRing builds a ring with the given virtual-node count per member
// (≤ 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: map[string]bool{}}
}

// Add inserts a member (idempotent); it reports whether the
// membership actually changed, so callers can bump the epoch exactly
// when the ring did.
func (r *Ring) Add(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[node] {
		return false
	}
	r.members[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: splitmix64(fnv64a(fmt.Sprintf("%s#%d", node, i))),
			node: node,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return true
}

// Remove deletes a member (idempotent), reporting whether it was
// present. Keys it owned flow to their ring successors; every other
// key keeps its owner.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return false
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// SetMembers replaces the membership wholesale with a diff update:
// members present in both sets keep their existing virtual nodes
// (their keys never remap), so adopting a gossiped membership disturbs
// exactly the keys of the nodes that actually joined or left.
func (r *Ring) SetMembers(members []string) {
	want := make(map[string]bool, len(members))
	for _, m := range members {
		want[m] = true
	}
	r.mu.Lock()
	changed := false
	for m := range r.members {
		if !want[m] {
			delete(r.members, m)
			changed = true
			kept := r.points[:0]
			for _, p := range r.points {
				if p.node != m {
					kept = append(kept, p)
				}
			}
			r.points = kept
		}
	}
	for m := range want {
		if !r.members[m] {
			r.members[m] = true
			changed = true
			for i := 0; i < r.replicas; i++ {
				r.points = append(r.points, ringPoint{
					hash: splitmix64(fnv64a(fmt.Sprintf("%s#%d", m, i))),
					node: m,
				})
			}
		}
	}
	if changed {
		sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	}
	r.mu.Unlock()
}

// OwnedRanges returns the keyspace slice a member owns on this ring:
// for each of its virtual nodes, the arc from the previous ring point
// (exclusive) to the virtual node's hash (inclusive) — exactly the
// keys whose clockwise successor point belongs to the member. A
// single-member ring owns the full circle; an unknown member owns
// nothing.
func (r *Ring) OwnedRanges(node string) keyspace.Ranges {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.members[node] || len(r.points) == 0 {
		return nil
	}
	if len(r.members) == 1 {
		// All points belong to the node; any single point's arc "from
		// itself all the way around" is the full circle.
		h := r.points[0].hash
		return keyspace.Ranges{{Lo: h, Hi: h}}
	}
	var rs keyspace.Ranges
	for i, p := range r.points {
		if p.node != node {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)]
		if prev.hash == p.hash {
			// Colliding adjacent points: the arc is zero-width, but
			// Lo == Hi would read as the full circle. Skip it.
			continue
		}
		rs = append(rs, keyspace.Range{Lo: prev.hash, Hi: p.hash})
	}
	return rs
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning a key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to k distinct members in ring order starting at
// the key's owner — the failover order: if the owner is down, the
// next member in the sequence is the one that would own the key were
// the owner removed, so retried requests land exactly where a ring
// flip would move them (warm state follows the same path on drain).
func (r *Ring) Sequence(key string, k int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.members) {
		k = len(r.members)
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for n := 0; n < len(r.points) && len(out) < k; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
