package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/serve"

	_ "disjunct/internal/semantics/all"
)

// TestClusterWarmJoin is the zero-cold-compile join contract: a fresh
// worker joins a warmed 3-node cluster, its future keyspace slice is
// prewarmed from the current owners before the ring flips, and a
// replay of the same workload afterwards is verdict-clean with the
// joiner serving its slice without a single cold compile.
func TestClusterWarmJoin(t *testing.T) {
	l := StartLocal(3, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 23}))
	defer l.Close()

	load := serve.LoadConfig{
		BaseURL: l.URL(), Rate: 400, Requests: 160, Workers: 8,
		Seed: 23, MaxAtoms: 4, Verify: true, HotDBs: 32,
	}
	warm := serve.RunLoad(load)
	if !warm.Clean() {
		t.Fatalf("warmup not clean: %s", warm.String())
	}

	epochBefore := l.Router.Epoch()
	w := l.StartWorker()
	rep, err := l.Router.JoinNode(context.Background(), w.URL())
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	if rep.State != JoinStateFlipped {
		t.Fatalf("join state = %q, want %q", rep.State, JoinStateFlipped)
	}
	if rep.Epoch != epochBefore+1 {
		t.Fatalf("join epoch = %d, want %d", rep.Epoch, epochBefore+1)
	}
	if got := len(l.Router.Nodes()); got != 4 {
		t.Fatalf("ring size after join = %d, want 4", got)
	}
	if rep.Artifacts == 0 {
		t.Fatalf("no donor exported anything for the joiner's slice: %+v", rep)
	}
	if rep.ImportedArtifacts == 0 {
		t.Fatalf("joiner accepted zero of %d shipped artifacts: %+v", rep.Artifacts, rep)
	}
	if len(rep.Donors) == 0 {
		t.Fatalf("join report lists no donors: %+v", rep)
	}

	// Replay the identical workload: every key the joiner now owns was
	// warmed on a donor during warmup and shipped over, so the joiner
	// must serve its slice entirely from imported state.
	replay := serve.RunLoad(load)
	if !replay.Clean() {
		t.Fatalf("post-join replay not clean: %s\nuntyped: %v\ndivergent: %v",
			replay.String(), replay.UntypedNotes, replay.DivergeNotes)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	h, err := serve.FetchHealth(client, w.URL())
	if err != nil {
		t.Fatalf("joiner healthz: %v", err)
	}
	if cc := h.Sessions["cold_compiles"]; cc != 0 {
		t.Fatalf("joined node ran %d cold compiles on its prewarmed slice, want 0 (sessions %v)",
			cc, h.Sessions)
	}
	if h.Sessions["compiled_entries"] == 0 {
		t.Fatal("joined node holds zero compiled entries despite the import")
	}
	if st := l.Router.health().Stats; st["joins"] != 1 || st["join_artifacts"] == 0 {
		t.Fatalf("join counters off: joins=%d join_artifacts=%d", st["joins"], st["join_artifacts"])
	}
}

// TestClusterJoinRejections covers the failure half of the join
// taxonomy: joining an existing member is refused, and an unreachable
// joiner fails with the ring untouched (a failed join changes nothing).
func TestClusterJoinRejections(t *testing.T) {
	l := StartLocal(2, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 29}))
	defer l.Close()

	if _, err := l.Router.JoinNode(context.Background(), l.Workers[0].URL()); err == nil {
		t.Fatal("joining an existing member succeeded")
	}

	before := l.Router.Epoch()
	rep, err := l.Router.JoinNode(context.Background(), "http://127.0.0.1:1")
	if err == nil {
		t.Fatal("joining an unreachable node succeeded")
	}
	if rep.State != JoinStateFailed {
		t.Fatalf("failed join state = %q, want %q", rep.State, JoinStateFailed)
	}
	if l.Router.Epoch() != before || len(l.Router.Nodes()) != 2 {
		t.Fatalf("failed join disturbed the ring: epoch %d→%d members %v",
			before, l.Router.Epoch(), l.Router.Nodes())
	}

	// The HTTP form returns a conflict with the typed error envelope.
	resp, err := http.Post(l.URL()+"/v1/cluster/join?node=http://127.0.0.1:1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("join of unreachable node: status %d, want 409", resp.StatusCode)
	}
	var er serve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("join error not typed: %v %+v", err, er)
	}
}

// TestBreakerReorder pins the candidate-reordering rules: open-breaker
// nodes are demoted behind breaker-clear ones (stably), the rerouted
// flag fires only when the primary actually changed, and the reorder
// never drops a node or applies without semantics information.
func TestBreakerReorder(t *testing.T) {
	r := NewRouter(RouterConfig{ProbeInterval: time.Hour, GossipInterval: time.Hour},
		[]string{"http://w1", "http://w2", "http://w3"})
	defer r.Close()
	r.node("http://w2").setOpenBreakers(map[string]bool{"GCWA": true})

	seq := []string{"http://w2", "http://w1", "http://w3"}
	got, rerouted := r.breakerReorder(seq, "GCWA")
	if !rerouted {
		t.Fatal("open-breaker primary not rerouted")
	}
	want := []string{"http://w1", "http://w3", "http://w2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reorder = %v, want %v", got, want)
		}
	}

	// Primary already clear: partition may apply but the flag stays off.
	if _, rr := r.breakerReorder([]string{"http://w1", "http://w2", "http://w3"}, "GCWA"); rr {
		t.Fatal("rerouted reported with a breaker-clear primary")
	}
	// Different semantics, no semantics, and all-blocked leave the
	// sequence alone.
	if got, rr := r.breakerReorder(seq, "EGCWA"); rr || got[0] != "http://w2" {
		t.Fatalf("unrelated semantics reordered: %v", got)
	}
	if _, rr := r.breakerReorder(seq, ""); rr {
		t.Fatal("reorder applied without semantics")
	}
	r.node("http://w1").setOpenBreakers(map[string]bool{"GCWA": true})
	r.node("http://w3").setOpenBreakers(map[string]bool{"GCWA": true})
	if got, rr := r.breakerReorder(seq, "GCWA"); rr || got[0] != "http://w2" {
		t.Fatalf("all-blocked sequence changed: %v", got)
	}
}

// TestClusterBreakerRouting is the end-to-end breaker-gossip contract:
// a worker whose GCWA breaker is open (tripped by real injected oracle
// faults) is routed around for (key, GCWA) pairs it owns — the request
// completes on a clear node with the library-identical verdict and the
// router accounts it as breaker_routed, while the open-breaker worker
// is never shed from the ring.
func TestClusterBreakerRouting(t *testing.T) {
	healthy := serve.New(serve.Config{Sessions: true})
	defer healthy.Drain(drainCtx())
	hURL := httptest.NewServer(healthy.Handler())
	defer hURL.Close()

	// Every oracle call faults and retries are off, so GCWA queries
	// terminate incomplete with transient_exhausted — the one cause
	// class that counts against the breaker. Sessions stay off: the
	// warm path bypasses fault injection and would never trip anything.
	faulty := serve.New(serve.Config{
		FaultRate: 1, FaultSeed: 1, RetryMax: -1,
		Breaker: serve.BreakerConfig{Threshold: 2, Cooldown: 30 * time.Second},
	})
	defer faulty.Drain(drainCtx())
	fURL := httptest.NewServer(faulty.Handler())
	defer fURL.Close()

	r := NewRouter(RouterConfig{ProbeInterval: 25 * time.Millisecond, Seed: 37, FailThreshold: 3},
		[]string{hURL.URL, fURL.URL})
	defer r.Close()
	rs := httptest.NewServer(r.Handler())
	defer rs.Close()

	// Find a database whose routing key the faulty worker owns. The
	// route key is a structural fingerprint, so candidates must differ
	// in shape (clause count), not just in atom names.
	var dbText, litText string
	for i := 0; i < 64; i++ {
		text := "a | b."
		for j := 0; j < i; j++ {
			text += fmt.Sprintf(" c%d.", j)
		}
		if r.ring.Owner(r.routeKey(text)) == fURL.URL {
			dbText, litText = text, "-a"
			break
		}
	}
	if dbText == "" {
		t.Fatal("no candidate database routed to the faulty worker")
	}

	// Trip the faulty worker's GCWA breaker with direct queries.
	post := func(url string) (int, serve.QueryResponse) {
		t.Helper()
		body, _ := json.Marshal(serve.QueryRequest{Semantics: "GCWA", DB: dbText, Literal: litText})
		resp, err := http.Post(url+"/v1/infer/literal", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post %s: %v", url, err)
		}
		defer resp.Body.Close()
		var qr serve.QueryResponse
		json.NewDecoder(resp.Body).Decode(&qr)
		return resp.StatusCode, qr
	}
	// Injected faults are a seeded mix of transient/cancel/latency and
	// only exhausted transients count against the breaker, so keep
	// querying until the router's probe has seen the breaker open.
	deadline := time.Now().Add(5 * time.Second)
	for {
		nh := r.health().Nodes[fURL.URL]
		if len(nh.OpenBreakers) > 0 {
			if !nh.Up {
				t.Fatalf("open breaker marked the whole node down: %+v", nh)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe never picked up the open breaker: %+v", r.health().Nodes)
		}
		post(fURL.URL)
		time.Sleep(15 * time.Millisecond)
	}

	// The routed query must complete on the healthy node with the
	// library-identical verdict, not relay the faulty owner's 503.
	status, qr := post(rs.URL)
	if status != http.StatusOK || qr.Incomplete {
		t.Fatalf("breaker-routed query: status=%d incomplete=%v cause=%q", status, qr.Incomplete, qr.CauseCode)
	}
	d, err := db.Parse(dbText)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := d.Voc.Lookup(litText[1:])
	if !ok {
		t.Fatalf("atom %q lost in parse", litText[1:])
	}
	s, _ := core.New("GCWA", core.Options{})
	want, err := s.InferLiteral(d, logic.NegLit(a))
	if err != nil {
		t.Fatal(err)
	}
	if qr.Holds != want {
		t.Fatalf("breaker routing changed the verdict: served=%v library=%v", qr.Holds, want)
	}
	if br := r.health().Stats["breaker_routed"]; br == 0 {
		t.Fatal("breaker_routed counter never incremented")
	}
}
