package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestRingChurnProperty interleaves random Add/Remove churn and checks
// the two placement invariants after every step: (a) a membership
// change remaps only the keys of the node that joined or left, and
// (b) when a node leaves, each of its keys lands exactly on the
// second entry of its pre-removal failover sequence — so failover,
// drain handoff, and the ring flip all agree on where a key goes.
func TestRingChurnProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := make([]string, 8)
	for i := range pool {
		pool[i] = fmt.Sprintf("node-%d", i)
	}
	r := NewRing(0)
	live := map[string]bool{}
	for _, n := range pool[:4] {
		r.Add(n)
		live[n] = true
	}
	keys := ringKeys(800)

	ownerSnap := func() map[string]string {
		m := make(map[string]string, len(keys))
		for _, k := range keys {
			m[k] = r.Owner(k)
		}
		return m
	}

	for step := 0; step < 60; step++ {
		var joined, removed []string
		for _, n := range pool {
			if live[n] {
				removed = append(removed, n)
			} else {
				joined = append(joined, n)
			}
		}
		before := ownerSnap()
		// Removal needs ≥3 live members so Sequence(key, 2) is two
		// distinct nodes; otherwise (or on a coin flip) join.
		if len(removed) > 2 && len(joined) > 0 && rng.Intn(2) == 0 || len(joined) == 0 {
			victim := removed[rng.Intn(len(removed))]
			succ := map[string]string{}
			for _, k := range keys {
				if before[k] == victim {
					seq := r.Sequence(k, 2)
					if len(seq) != 2 || seq[0] != victim {
						t.Fatalf("step %d: Sequence(%q, 2) = %v with owner %s", step, k, seq, victim)
					}
					succ[k] = seq[1]
				}
			}
			r.Remove(victim)
			delete(live, victim)
			for _, k := range keys {
				after := r.Owner(k)
				switch {
				case before[k] == victim:
					if after != succ[k] {
						t.Fatalf("step %d: key %q left %s for %s, want sequence successor %s",
							step, k, victim, after, succ[k])
					}
				case after != before[k]:
					t.Fatalf("step %d: key %q moved %s → %s when unrelated %s left",
						step, k, before[k], after, victim)
				}
			}
		} else {
			newcomer := joined[rng.Intn(len(joined))]
			r.Add(newcomer)
			live[newcomer] = true
			for _, k := range keys {
				if after := r.Owner(k); after != before[k] && after != newcomer {
					t.Fatalf("step %d: key %q moved %s → %s when %s joined",
						step, k, before[k], after, newcomer)
				}
			}
		}
	}
}

// TestMembershipMergeSemilattice pins the algebra convergence rests on:
// Merge is commutative, associative, and idempotent, and higher epoch
// always wins with the hash as the same-epoch tie-break.
func TestMembershipMergeSemilattice(t *testing.T) {
	states := []Membership{
		{Epoch: 1, Members: []string{"a", "b", "c"}},
		{Epoch: 2, Members: []string{"a", "b"}},
		{Epoch: 3, Members: []string{"a", "b", "d"}},
		{Epoch: 3, Members: []string{"a", "b", "e"}}, // concurrent same-epoch proposal
		{Epoch: 4, Members: []string{"a", "b", "d", "e"}},
	}
	eq := func(x, y Membership) bool {
		return x.Epoch == y.Epoch && x.Hash() == y.Hash()
	}
	for _, a := range states {
		if !eq(Merge(a, a), a.normalize()) {
			t.Fatalf("Merge not idempotent on %+v", a)
		}
		for _, b := range states {
			ab, ba := Merge(a, b), Merge(b, a)
			if !eq(ab, ba) {
				t.Fatalf("Merge not commutative: %+v vs %+v", ab, ba)
			}
			for _, c := range states {
				if !eq(Merge(Merge(a, b), c), Merge(a, Merge(b, c))) {
					t.Fatalf("Merge not associative on (%+v, %+v, %+v)", a, b, c)
				}
			}
		}
	}
	if got := Merge(states[0], states[1]); got.Epoch != 2 {
		t.Fatalf("epoch 2 should beat epoch 1, got %+v", got)
	}
	// The same-epoch pair resolves the same way from both sides and the
	// winner is one of the inputs verbatim, never a blend.
	w := Merge(states[2], states[3])
	if !eq(w, states[2].normalize()) && !eq(w, states[3].normalize()) {
		t.Fatalf("same-epoch merge invented a member set: %+v", w)
	}
}

// TestMembershipConvergesAnyOrder replays one mutation history to a
// fleet of fold states in many random delivery orders, with random
// duplication, and requires every fold to end at the same membership —
// the convergence property replicated routers rely on in place of
// consensus.
func TestMembershipConvergesAnyOrder(t *testing.T) {
	history := []Membership{
		{Epoch: 1, Members: []string{"w1"}},
		{Epoch: 2, Members: []string{"w1", "w2"}},
		{Epoch: 3, Members: []string{"w1", "w2", "w3"}},
		{Epoch: 4, Members: []string{"w2", "w3"}},
		{Epoch: 4, Members: []string{"w1", "w3"}}, // concurrent with the drain above
		{Epoch: 5, Members: []string{"w2", "w3", "w4"}},
	}
	rng := rand.New(rand.NewSource(7))
	var want Membership
	for trial := 0; trial < 50; trial++ {
		msgs := append([]Membership(nil), history...)
		rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
		acc := msgs[0]
		for _, m := range msgs[1:] {
			acc = Merge(acc, m)
			if rng.Intn(3) == 0 { // duplicated delivery
				acc = Merge(acc, m)
			}
		}
		if trial == 0 {
			want = acc
			continue
		}
		if acc.Epoch != want.Epoch || acc.Hash() != want.Hash() {
			t.Fatalf("trial %d converged to %+v, trial 0 to %+v", trial, acc, want)
		}
	}
	if want.Epoch != 5 {
		t.Fatalf("converged epoch = %d, want 5", want.Epoch)
	}
}

// TestRouterAdoptConvergesAnyOrder applies the same gossip replay at
// the router level: three routers with large probe/gossip intervals
// (so nothing fires mid-test) adopt a shuffled, duplicated message
// stream and must end with identical epoch-tagged rings, each reached
// via diff updates that never disturbed an unaffected node's keys.
func TestRouterAdoptConvergesAnyOrder(t *testing.T) {
	quiet := RouterConfig{ProbeInterval: time.Hour, GossipInterval: time.Hour, Seed: 5}
	msgs := []Membership{
		{Epoch: 4, Members: []string{"http://w1", "http://w2", "http://w3"}},
		{Epoch: 5, Members: []string{"http://w1", "http://w3"}},
		{Epoch: 6, Members: []string{"http://w1", "http://w3", "http://w4"}},
	}
	rng := rand.New(rand.NewSource(3))
	var routers []*Router
	for i := 0; i < 3; i++ {
		r := NewRouter(quiet, []string{"http://w0"})
		defer r.Close()
		routers = append(routers, r)
		order := rng.Perm(len(msgs))
		for _, j := range order {
			r.adoptMembership(msgs[j])
			r.adoptMembership(msgs[j]) // duplicated delivery is a no-op
		}
	}
	want := routers[0].membership()
	if want.Epoch != 6 {
		t.Fatalf("router converged to epoch %d, want 6", want.Epoch)
	}
	for i, r := range routers[1:] {
		got := r.membership()
		if got.Epoch != want.Epoch || got.Hash() != want.Hash() {
			t.Fatalf("router %d at %+v, router 0 at %+v", i+1, got, want)
		}
	}
	// A stale message must not regress an adopted state.
	routers[0].adoptMembership(msgs[0])
	if got := routers[0].membership(); got.Epoch != 6 {
		t.Fatalf("stale epoch-4 gossip regressed the ring to %+v", got)
	}
}
