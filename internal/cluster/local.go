package cluster

import (
	"context"
	"net/http/httptest"

	"disjunct/internal/serve"
)

// drainCtx is the context local teardown drains under; the server's
// own DrainTimeout bounds the forced phase.
func drainCtx() context.Context { return context.Background() }

// Local is an in-process cluster: N real serve.Servers on httptest
// listeners behind one Router, for tests, ddbsoak sweeps, and the
// bench harness. Everything runs over real HTTP on the loopback, so
// the failure modes (torn connections on an abrupt worker close,
// refused dials) are the genuine article, not mocks.
type Local struct {
	Router  *Router
	RSrv    *httptest.Server
	Workers []*LocalWorker
	Chaos   *ChaosTransport

	// PeerRouters are replica routers added by AddRouterPeer, gossiping
	// with the primary.
	PeerRouters []*Router
	PeerSrvs    []*httptest.Server

	workerCfg serve.Config
}

// LocalWorker pairs one serve.Server with its listener.
type LocalWorker struct {
	Srv  *serve.Server
	HTTP *httptest.Server
}

// URL returns the worker's base URL.
func (w *LocalWorker) URL() string { return w.HTTP.URL }

// Kill abruptly terminates the worker: the listener closes with
// in-flight connections cut, exactly what the router sees when a
// process is SIGKILLed. The serve.Server's goroutines are cleaned up
// via an immediate forced drain so tests leak nothing.
func (w *LocalWorker) Kill() {
	w.HTTP.CloseClientConnections()
	w.HTTP.Close()
	go w.Srv.Drain(drainCtx())
}

// StartLocal builds an n-worker cluster. Each worker gets its own
// serve.Server from workerCfg (sessions on unless the caller disabled
// them explicitly alongside a store). Close tears everything down.
func StartLocal(n int, workerCfg serve.Config, routerCfg RouterConfig) *Local {
	l := &Local{workerCfg: workerCfg}
	var urls []string
	for i := 0; i < n; i++ {
		s := serve.New(workerCfg)
		hs := httptest.NewServer(s.Handler())
		l.Workers = append(l.Workers, &LocalWorker{Srv: s, HTTP: hs})
		urls = append(urls, hs.URL)
	}
	l.Chaos = NewChaosTransport(routerCfg.Transport)
	routerCfg.Transport = l.Chaos
	l.Router = NewRouter(routerCfg, urls)
	l.RSrv = httptest.NewServer(l.Router.Handler())
	return l
}

// URL returns the router's base URL — point any load at it.
func (l *Local) URL() string { return l.RSrv.URL }

// StartWorker brings up a fresh worker process (listener + server)
// WITHOUT adding it to the ring — the raw material for a warm join.
func (l *Local) StartWorker() *LocalWorker {
	s := serve.New(l.workerCfg)
	hs := httptest.NewServer(s.Handler())
	w := &LocalWorker{Srv: s, HTTP: hs}
	l.Workers = append(l.Workers, w)
	return w
}

// AddRouterPeer brings up a replica router over the same worker set,
// peered one-sidedly with the primary (push-pull gossip makes one side
// enough). It returns the replica; its listener is tracked for Close.
func (l *Local) AddRouterPeer(routerCfg RouterConfig) (*Router, *httptest.Server) {
	routerCfg.Transport = l.Chaos
	peer := NewRouter(routerCfg, l.Router.Nodes())
	ps := httptest.NewServer(peer.Handler())
	peer.AddPeer(l.RSrv.URL)
	l.Router.AddPeer(ps.URL)
	l.PeerRouters = append(l.PeerRouters, peer)
	l.PeerSrvs = append(l.PeerSrvs, ps)
	return peer, ps
}

// Close drains every still-running worker and stops the routers.
func (l *Local) Close() {
	for _, ps := range l.PeerSrvs {
		func() {
			defer func() { recover() }()
			ps.Close()
		}()
	}
	for _, pr := range l.PeerRouters {
		pr.Close()
	}
	l.RSrv.Close()
	l.Router.Close()
	for _, w := range l.Workers {
		func() {
			defer func() { recover() }() // double-close after Kill is fine
			w.HTTP.Close()
		}()
		w.Srv.Drain(drainCtx())
	}
}
