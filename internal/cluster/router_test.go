package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"disjunct/internal/faults"
	"disjunct/internal/serve"

	_ "disjunct/internal/semantics/all"
)

// fastProbe shrinks the router's probe interval so down/up transitions
// resolve within test timescales.
func fastProbe(cfg RouterConfig) RouterConfig {
	cfg.ProbeInterval = 25 * time.Millisecond
	return cfg
}

// TestClusterVerdictIdentity drives a seeded repeat-DB workload through
// a 3-node cluster with warm sessions on and cross-checks every
// completed verdict against a direct library call — routing must never
// change a verdict.
func TestClusterVerdictIdentity(t *testing.T) {
	l := StartLocal(3, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 11}))
	defer l.Close()

	rep := serve.RunLoad(serve.LoadConfig{
		BaseURL:  l.URL(),
		Rate:     400,
		Requests: 120,
		Workers:  8,
		Seed:     11,
		MaxAtoms: 4,
		Verify:   true,
		HotDBs:   6,
	})
	if !rep.Clean() {
		t.Fatalf("cluster load not clean: %s\nuntyped: %v\ndivergent: %v",
			rep.String(), rep.UntypedNotes, rep.DivergeNotes)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed through the router")
	}
}

// TestClusterFailoverOnKill kills one worker under load: every request
// routed at the dead node must fail over to a ring successor and
// complete with an identical verdict — zero divergent, zero untyped —
// and the router must eventually mark the node down.
func TestClusterFailoverOnKill(t *testing.T) {
	l := StartLocal(3, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 7}))
	defer l.Close()

	// Warm the cluster, then kill the seeded victim.
	pre := serve.RunLoad(serve.LoadConfig{
		BaseURL: l.URL(), Rate: 400, Requests: 40, Workers: 8,
		Seed: 7, MaxAtoms: 4, Verify: true, HotDBs: 6,
	})
	if !pre.Clean() {
		t.Fatalf("warmup not clean: %s", pre.String())
	}
	// Kill the warmest worker so the dead node provably owned traffic
	// (a victim owning zero hot keys would never trigger a failover).
	client := &http.Client{Timeout: 5 * time.Second}
	victim := 0
	best := int64(-1)
	for i, w := range l.Workers {
		h, err := serve.FetchHealth(client, w.URL())
		if err != nil {
			t.Fatalf("healthz %s: %v", w.URL(), err)
		}
		if n := h.Sessions["compiled_entries"]; n > best {
			best, victim = n, i
		}
	}
	l.Workers[victim].Kill()

	post := serve.RunLoad(serve.LoadConfig{
		BaseURL: l.URL(), Rate: 400, Requests: 80, Workers: 8,
		Seed: 7, MaxAtoms: 4, Verify: true, HotDBs: 6,
	})
	if !post.Clean() {
		t.Fatalf("post-kill load not clean: %s\nuntyped: %v\ndivergent: %v",
			post.String(), post.UntypedNotes, post.DivergeNotes)
	}
	if post.Completed == 0 {
		t.Fatal("nothing completed after the kill")
	}

	h := l.Router.health()
	if h.Stats["failovers"] == 0 {
		t.Fatal("no failovers recorded despite a dead worker")
	}
	if h.Stats["failover_success"] < h.Stats["failovers"] {
		t.Fatalf("failover completion %d/%d below 100%% with two healthy successors",
			h.Stats["failover_success"], h.Stats["failovers"])
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		h = l.Router.health()
		if nh, ok := h.Nodes[l.Workers[victim].URL()]; ok && !nh.Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never marked the killed node down: %+v", h.Nodes)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterDrainHandoff gracefully drains one node while load is in
// flight: the departing worker's artifacts and verdicts must land on
// the ring successors before the flip, requests must stay clean
// throughout, and afterwards no worker may leak a session checkout or
// a goroutine.
func TestClusterDrainHandoff(t *testing.T) {
	l := StartLocal(3, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 3}))
	defer l.Close()

	warm := serve.RunLoad(serve.LoadConfig{
		BaseURL: l.URL(), Rate: 400, Requests: 60, Workers: 8,
		Seed: 3, MaxAtoms: 4, Verify: true, HotDBs: 6,
	})
	if !warm.Clean() {
		t.Fatalf("warmup not clean: %s", warm.String())
	}

	// Pick the warmest node so the handoff provably moves real state
	// (with few hot DBs a worker can own zero keys).
	client := &http.Client{Timeout: 5 * time.Second}
	victim := l.Workers[0]
	best := int64(-1)
	for _, w := range l.Workers {
		h, err := serve.FetchHealth(client, w.URL())
		if err != nil {
			t.Fatalf("healthz %s: %v", w.URL(), err)
		}
		if n := h.Sessions["compiled_entries"]; n > best {
			best, victim = n, w
		}
	}
	if best == 0 {
		t.Fatal("no worker compiled anything during warmup")
	}

	// Drain concurrently with a second load wave — the mid-drain part
	// of the contract.
	var wg sync.WaitGroup
	var mid serve.LoadReport
	wg.Add(1)
	go func() {
		defer wg.Done()
		mid = serve.RunLoad(serve.LoadConfig{
			BaseURL: l.URL(), Rate: 400, Requests: 60, Workers: 8,
			Seed: 3, MaxAtoms: 4, Verify: true, HotDBs: 6,
		})
	}()
	rep, err := l.Router.DrainNode(drainCtx(), victim.URL())
	if err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	wg.Wait()
	if !mid.Clean() {
		t.Fatalf("mid-drain load not clean: %s\nuntyped: %v\ndivergent: %v",
			mid.String(), mid.UntypedNotes, mid.DivergeNotes)
	}
	if rep.Artifacts == 0 {
		t.Fatal("drain exported zero artifacts from a warmed worker")
	}
	imported := 0
	for _, n := range rep.Imported {
		imported += n
	}
	if imported == 0 {
		t.Fatalf("drain imported nothing into successors: %+v", rep)
	}
	if got := len(l.Router.Nodes()); got != 2 {
		t.Fatalf("ring size after drain = %d, want 2", got)
	}

	// Post-drain traffic lands only on the survivors and stays clean.
	after := serve.RunLoad(serve.LoadConfig{
		BaseURL: l.URL(), Rate: 400, Requests: 40, Workers: 8,
		Seed: 3, MaxAtoms: 4, Verify: true, HotDBs: 6,
	})
	if !after.Clean() {
		t.Fatalf("post-drain load not clean: %s", after.String())
	}

	// Zero checkout leaks on every still-serving worker.
	for i, w := range l.Workers {
		if w == victim {
			continue
		}
		h, err := serve.FetchHealth(client, w.URL())
		if err != nil {
			t.Fatalf("worker %d healthz: %v", i, err)
		}
		if h.Sessions["active_checkouts"] != 0 {
			t.Fatalf("worker %d leaks %d session checkouts", i, h.Sessions["active_checkouts"])
		}
	}
}

// TestClusterAllNodesDownShedsTyped exhausts the failover sequence —
// every worker killed — and requires the typed node_unavailable shed
// with a Retry-After tied to the probe interval.
func TestClusterAllNodesDownShedsTyped(t *testing.T) {
	l := StartLocal(2, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 5}))
	defer l.Close()
	for _, w := range l.Workers {
		w.Kill()
	}

	body, _ := json.Marshal(serve.QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
	resp, err := http.Post(l.URL()+"/v1/infer/literal", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var er serve.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if er.Error != serve.ShedNodeUnavailable {
		t.Fatalf("error = %q, want %q", er.Error, serve.ShedNodeUnavailable)
	}
	if er.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", er.RetryAfterMS)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After header missing on node_unavailable shed")
	}
}

// TestClusterStreamNodeLost kills the worker carrying a long stream
// mid-enumeration: the client must receive a typed terminal record
// with cause node_lost, never a torn NDJSON body.
func TestClusterStreamNodeLost(t *testing.T) {
	l := StartLocal(1, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 9}))
	defer l.Close()

	// A wide positive DB has ~2^14 models: plenty of stream to be
	// mid-flight when the worker dies.
	db := ""
	for i := 0; i < 14; i++ {
		db += fmt.Sprintf("a%d | b%d. ", i, i)
	}
	body, _ := json.Marshal(serve.StreamRequest{DB: db, Kind: "models"})
	resp, err := http.Post(l.URL()+"/v1/models/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d body %s", resp.StatusCode, b)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	killed := false
	var last serve.StreamLine
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("torn NDJSON line %d: %v (%q)", lines, err, sc.Text())
		}
		lines++
		if lines == 3 && !killed {
			l.Workers[0].Kill()
			killed = true
		}
		if last.Done {
			break
		}
	}
	if !last.Done {
		t.Fatalf("stream ended after %d lines without a terminal record", lines)
	}
	if last.Cause != serve.StreamCauseNodeLost {
		t.Fatalf("terminal cause = %q, want %q (%d lines)", last.Cause, serve.StreamCauseNodeLost, lines)
	}
	if !serve.KnownStreamCauses[last.Cause] {
		t.Fatalf("cause %q not in the closed stream-cause set", last.Cause)
	}
}

// TestClusterPartitionHealsViaProbe partitions a worker at the
// transport, watches the router mark it down and fail over cleanly,
// then heals the partition and watches a probe restore it.
func TestClusterPartitionHealsViaProbe(t *testing.T) {
	l := StartLocal(3, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 13, FailThreshold: 2}))
	defer l.Close()

	victim := l.Workers[1]
	l.Chaos.Afflict(hostOf(victim.URL()), faults.NodePartition)

	rep := serve.RunLoad(serve.LoadConfig{
		BaseURL: l.URL(), Rate: 400, Requests: 60, Workers: 8,
		Seed: 13, MaxAtoms: 4, Verify: true, HotDBs: 6,
	})
	if !rep.Clean() {
		t.Fatalf("partitioned load not clean: %s\nuntyped: %v", rep.String(), rep.UntypedNotes)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if nh := l.Router.health().Nodes[victim.URL()]; !nh.Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned node never marked down")
		}
		time.Sleep(20 * time.Millisecond)
	}

	l.Chaos.Heal()
	deadline = time.Now().Add(3 * time.Second)
	for {
		if nh := l.Router.health().Nodes[victim.URL()]; nh.Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healed node never recovered via probe")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if refused, _ := l.Chaos.Counts(); refused == 0 {
		_, refused2 := l.Chaos.Counts()
		if refused2 == 0 {
			t.Fatal("chaos transport never refused a connection")
		}
	}
}

// TestClusterGoroutineSettle runs a full kill+drain scenario and then
// requires the process goroutine count to settle near its baseline —
// the router and workers may not leak.
func TestClusterGoroutineSettle(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	l := StartLocal(3, serve.Config{Sessions: true}, fastProbe(RouterConfig{Seed: 17}))
	rep := serve.RunLoad(serve.LoadConfig{
		BaseURL: l.URL(), Rate: 400, Requests: 40, Workers: 8,
		Seed: 17, MaxAtoms: 4, Verify: true, HotDBs: 4,
	})
	if !rep.Clean() {
		t.Fatalf("load not clean: %s", rep.String())
	}
	l.Workers[2].Kill()
	if _, err := l.Router.DrainNode(drainCtx(), l.Workers[1].URL()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	l.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: baseline=%d now=%d", baseline, runtime.NumGoroutine())
}

// hostOf strips the scheme from an httptest URL.
func hostOf(url string) string {
	for i := 0; i+2 < len(url); i++ {
		if url[i] == ':' && url[i+1] == '/' && url[i+2] == '/' {
			return url[i+3:]
		}
	}
	return url
}
