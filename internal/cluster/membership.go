package cluster

import "sort"

// Membership is an epoch-tagged snapshot of the cluster's member set —
// the unit of agreement between replicated routers. Epochs are bumped
// by whichever router performs a membership mutation (join, drain,
// remove); gossip then carries the tagged set to the peers.
//
// Convergence does not need a consensus protocol because the merge is
// a join-semilattice: Merge picks the maximum by (Epoch, Hash), which
// is commutative, associative, and idempotent — so any set of routers
// replaying any interleaving of the same gossip messages, in any
// delivery order and with any duplication, ends at the same Membership.
// The Hash tie-break only matters when two routers mutate concurrently
// at the same epoch; one side deterministically wins and the loser's
// mutation is re-applied by its operator or by probe-driven discovery,
// never silently merged into a set nobody proposed.
type Membership struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"` // sorted base URLs
}

// normalize sorts and dedups the member list so equal sets hash equal.
func (m Membership) normalize() Membership {
	out := make([]string, 0, len(m.Members))
	seen := make(map[string]bool, len(m.Members))
	for _, x := range m.Members {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	m.Members = out
	return m
}

// Hash is a canonical digest of the member set (epoch excluded): the
// deterministic tie-break for concurrent same-epoch proposals.
func (m Membership) Hash() uint64 {
	m = m.normalize()
	h := uint64(14695981039346656037)
	for _, member := range m.Members {
		h ^= fnv64a(member)
		h = splitmix64(h)
	}
	return h
}

// Beats reports whether m supersedes other under the total order
// (Epoch, Hash). Equal epoch and equal hash is the same set; neither
// beats the other and a merge keeps what it has.
func (m Membership) Beats(other Membership) bool {
	if m.Epoch != other.Epoch {
		return m.Epoch > other.Epoch
	}
	return m.Hash() > other.Hash()
}

// Merge returns the winner of the two snapshots. The result is one of
// the inputs verbatim — merge never invents a blended member set.
func Merge(a, b Membership) Membership {
	if b.Beats(a) {
		return b.normalize()
	}
	return a.normalize()
}
