package cluster

import (
	"fmt"
	"testing"
)

// ringKeys generates a deterministic corpus of routing keys shaped like
// the raw compiled-DB fingerprints the router actually hashes.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("raw:%d|c%d", i, splitmix64(uint64(i)))
	}
	return keys
}

// TestRingStability is the ring-stability property: removing a node
// remaps only the keys that node owned, and re-adding it restores the
// original assignment exactly.
func TestRingStability(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(2000)

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		o := r.Owner(k)
		if o == "" {
			t.Fatalf("empty owner for %q on populated ring", k)
		}
		before[k] = o
	}

	for _, victim := range nodes {
		r.Remove(victim)
		for _, k := range keys {
			after := r.Owner(k)
			if after == victim {
				t.Fatalf("key %q still owned by removed node %s", k, victim)
			}
			if before[k] != victim && after != before[k] {
				t.Fatalf("key %q owned by %s moved to %s when unrelated node %s left",
					k, before[k], after, victim)
			}
		}
		r.Add(victim)
		for _, k := range keys {
			if got := r.Owner(k); got != before[k] {
				t.Fatalf("key %q: owner %s after re-adding %s, want %s", k, got, victim, before[k])
			}
		}
	}
}

// TestRingSequenceMatchesRemoval checks the failover contract: the
// second node in Sequence(key, 2) is exactly the owner the key would
// have if the first were removed — so failover and drain-handoff land
// warm state on the same node.
func TestRingSequenceMatchesRemoval(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	for _, k := range ringKeys(500) {
		seq := r.Sequence(k, 2)
		if len(seq) != 2 {
			t.Fatalf("Sequence(%q, 2) = %v, want 2 distinct nodes", k, seq)
		}
		if seq[0] == seq[1] {
			t.Fatalf("Sequence(%q, 2) repeated node %v", k, seq)
		}
		r.Remove(seq[0])
		if got := r.Owner(k); got != seq[1] {
			t.Fatalf("key %q: post-removal owner %s, want sequence successor %s", k, got, seq[1])
		}
		r.Add(seq[0])
	}
}

// TestRingBalance bounds the skew on a 3-node ring with default
// vnodes: no node should own more than twice its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"w1", "w2", "w3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	keys := ringKeys(6000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns zero keys", n)
		}
		if counts[n] > 2*fair {
			t.Fatalf("node %s owns %d of %d keys (> 2x fair share %d)", n, counts[n], len(keys), fair)
		}
	}
}

// TestRingEdgeCases covers the empty ring, single node, and k clamps.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if r.Owner("k") != "" {
		t.Fatal("empty ring should own nothing")
	}
	if seq := r.Sequence("k", 3); seq != nil {
		t.Fatalf("empty ring Sequence = %v, want nil", seq)
	}
	r.Add("only")
	r.Add("only") // idempotent
	if r.Size() != 1 {
		t.Fatalf("Size = %d after duplicate Add, want 1", r.Size())
	}
	if got := r.Sequence("k", 5); len(got) != 1 || got[0] != "only" {
		t.Fatalf("Sequence on 1-node ring = %v", got)
	}
	r.Remove("ghost") // idempotent no-op
	if r.Owner("k") != "only" {
		t.Fatal("removing absent node disturbed ownership")
	}
	if got := r.Members(); len(got) != 1 || got[0] != "only" {
		t.Fatalf("Members = %v", got)
	}
}

func TestRingConcurrentAccess(t *testing.T) {
	r := NewRing(32)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Remove("n3")
			r.Add("n3")
		}
	}()
	for _, k := range ringKeys(200) {
		_ = r.Owner(k)
		_ = r.Sequence(k, 3)
		_ = r.Members()
	}
	<-done
}
