package cluster

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disjunct/internal/cache"
	"disjunct/internal/db"
	"disjunct/internal/faults"
	"disjunct/internal/serve"
	"disjunct/internal/session"
)

// RouterConfig tunes the cluster router. The zero value gets defaults
// from NewRouter.
type RouterConfig struct {
	// Replicas is the ring's virtual-node count per worker
	// (default DefaultReplicas).
	Replicas int
	// FailoverMax bounds how many ring successors a request may fail
	// over to beyond its owner (default 2). Only idempotent inference
	// requests fail over; failover never retries a node that already
	// produced a response.
	FailoverMax int
	// ProbeInterval is the health-probe period per node, and also the
	// Retry-After hint on node_unavailable sheds — the cluster-level
	// analogue of the breaker's half-open interval (default 250ms).
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive request/probe failures mark
	// a node down until a probe succeeds again (default 3).
	FailThreshold int
	// Seed feeds the full-jitter backoff between failover attempts, so
	// a failover storm after a node kill decorrelates deterministically.
	Seed int64
	// KeyCache bounds the DB-text → route-key LRU (default 4096).
	KeyCache int
	// Transport overrides the HTTP transport to the workers — the
	// node-chaos hook (default http.DefaultTransport).
	Transport http.RoundTripper
	// RequestTimeout bounds one forwarded attempt (default 30s;
	// streams are exempt).
	RequestTimeout time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.FailoverMax < 0 {
		c.FailoverMax = 0
	} else if c.FailoverMax == 0 {
		c.FailoverMax = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.KeyCache <= 0 {
		c.KeyCache = 4096
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// node is the router's view of one worker.
type node struct {
	name string // ring member id == base URL
	url  string // base URL, no trailing slash

	down     atomic.Bool
	draining atomic.Bool
	fails    atomic.Int32 // consecutive failures toward FailThreshold
}

// routerStats are the monotonic counters surfaced by the router's
// /healthz — the smoke harness computes the post-kill failover
// completion ratio from failovers / failover_success.
type routerStats struct {
	forwarded       atomic.Int64 // requests relayed with a worker response
	failovers       atomic.Int64 // requests that needed ≥1 failover hop
	failoverSuccess atomic.Int64 // of those, requests a later node answered
	shedUnavailable atomic.Int64 // typed node_unavailable sheds
	streamNodeLost  atomic.Int64 // streams terminated with cause node_lost
	probes          atomic.Int64
	keyHits         atomic.Int64
	keyMisses       atomic.Int64
	handoffArts     atomic.Int64 // artifacts moved by drain handoffs
	handoffVerds    atomic.Int64 // verdicts moved by drain handoffs
}

// Router is the stateless cluster front: it owns the ring, the node
// health state, and the drain orchestration, and forwards every
// request to the worker owning its compiled-DB fingerprint. It holds
// no inference state of its own — restarting the router loses nothing.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client

	nodeMu sync.RWMutex
	nodes  map[string]*node

	keyMu   sync.Mutex
	keyLRU  *list.List               // front = most recent; values are *keyEntry
	keyIdx  map[string]*list.Element // db text → entry
	stats   routerStats
	mux     *http.ServeMux
	stopped chan struct{}
	stopOne sync.Once
	probeWG sync.WaitGroup
}

type keyEntry struct {
	text string
	key  string
}

// NewRouter builds a router over an initial worker set (base URLs) and
// starts its health-probe loop. Call Close to stop probing.
func NewRouter(cfg RouterConfig, workers []string) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Replicas),
		client:  &http.Client{Transport: cfg.Transport},
		nodes:   map[string]*node{},
		keyLRU:  list.New(),
		keyIdx:  map[string]*list.Element{},
		stopped: make(chan struct{}),
	}
	for _, w := range workers {
		r.AddNode(w)
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /v1/infer/literal", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/infer/formula", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/model", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/batch", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/models/stream", r.forwardStream)
	r.mux.HandleFunc("GET /v1/semantics", r.forwardAny)
	r.mux.HandleFunc("POST /v1/cluster/drain", r.handleDrain)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /readyz", r.handleReadyz)
	r.probeWG.Add(1)
	go r.probeLoop()
	return r
}

// Handler returns the router's HTTP handler tree.
func (r *Router) Handler() http.Handler { return r.mux }

// Close stops the probe loop. Idempotent.
func (r *Router) Close() {
	r.stopOne.Do(func() { close(r.stopped) })
	r.probeWG.Wait()
}

// AddNode inserts a worker (base URL) into the ring and health set.
func (r *Router) AddNode(baseURL string) {
	name := strings.TrimSuffix(baseURL, "/")
	r.nodeMu.Lock()
	if _, ok := r.nodes[name]; !ok {
		r.nodes[name] = &node{name: name, url: name}
	}
	r.nodeMu.Unlock()
	r.ring.Add(name)
}

// RemoveNode drops a worker abruptly — no handoff. Use DrainNode for
// the graceful path.
func (r *Router) RemoveNode(baseURL string) {
	name := strings.TrimSuffix(baseURL, "/")
	r.ring.Remove(name)
	r.nodeMu.Lock()
	delete(r.nodes, name)
	r.nodeMu.Unlock()
}

// Nodes lists the current members, sorted.
func (r *Router) Nodes() []string { return r.ring.Members() }

func (r *Router) node(name string) *node {
	r.nodeMu.RLock()
	n := r.nodes[name]
	r.nodeMu.RUnlock()
	return n
}

// fail records one failure against a node; at FailThreshold the node
// goes down until a probe succeeds.
func (r *Router) fail(n *node) {
	if n == nil {
		return
	}
	if int(n.fails.Add(1)) >= r.cfg.FailThreshold {
		n.down.Store(true)
	}
}

// recover marks a node healthy again (probe success).
func (r *Router) recover(n *node) {
	n.fails.Store(0)
	n.down.Store(false)
}

// probeLoop is the probe-driven half-open mechanism at node level:
// a downed node takes no traffic until a /readyz probe succeeds, at
// which point it is instantly fully restored. The probe interval is
// therefore the honest Retry-After hint for node_unavailable sheds.
func (r *Router) probeLoop() {
	defer r.probeWG.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopped:
			return
		case <-t.C:
		}
		r.nodeMu.RLock()
		nodes := make([]*node, 0, len(r.nodes))
		for _, n := range r.nodes {
			nodes = append(nodes, n)
		}
		r.nodeMu.RUnlock()
		for _, n := range nodes {
			r.probeOne(n)
		}
	}
}

func (r *Router) probeOne(n *node) {
	r.stats.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		n.draining.Store(false)
		r.fail(n)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		n.draining.Store(false)
		r.recover(n)
		return
	}
	// A draining worker is alive but must take no new traffic; track
	// the distinction for /healthz, route around it either way.
	n.draining.Store(bytes.Contains(body, []byte(serve.ShedDraining)))
	r.fail(n)
}

// routeKey maps a request's database text to its routing key: the raw
// compiled-DB fingerprint (cache.RawKey over the grounded CNF), which
// is exactly the session key workers memoize under — so routing on it
// gives perfect warm-session locality without the expensive canonical
// labeling. Unparseable texts route on the text itself; the owning
// worker will produce the typed 400.
func (r *Router) routeKey(text string) string {
	r.keyMu.Lock()
	if el, ok := r.keyIdx[text]; ok {
		r.keyLRU.MoveToFront(el)
		k := el.Value.(*keyEntry).key
		r.keyMu.Unlock()
		r.stats.keyHits.Add(1)
		return k
	}
	r.keyMu.Unlock()
	r.stats.keyMisses.Add(1)

	key := "text:" + text
	if d, err := db.Parse(text); err == nil {
		key = cache.RawKey(d.N(), d.ToCNF())
	}

	r.keyMu.Lock()
	if el, ok := r.keyIdx[text]; ok { // racing fill: keep the winner
		r.keyLRU.MoveToFront(el)
		key = el.Value.(*keyEntry).key
	} else {
		r.keyIdx[text] = r.keyLRU.PushFront(&keyEntry{text: text, key: key})
		for r.keyLRU.Len() > r.cfg.KeyCache {
			victim := r.keyLRU.Back()
			r.keyLRU.Remove(victim)
			delete(r.keyIdx, victim.Value.(*keyEntry).text)
		}
	}
	r.keyMu.Unlock()
	return key
}

// dbBody is the one field the router needs from any query body.
type dbBody struct {
	DB string `json:"db"`
}

// readBody buffers the request body once so failover can replay it.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: "body: " + err.Error(),
		})
		return nil, false
	}
	return body, true
}

func writeError(w http.ResponseWriter, status int, resp serve.ErrorResponse) {
	if resp.RetryAfterMS > 0 {
		secs := (resp.RetryAfterMS + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	data, _ := json.Marshal(resp)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// candidates computes a request's failover sequence: the key's owner
// followed by up to FailoverMax distinct ring successors.
func (r *Router) candidates(key string) []string {
	return r.ring.Sequence(key, 1+r.cfg.FailoverMax)
}

// attemptOutcome classifies one forwarded attempt.
type attemptOutcome int

const (
	attemptRelayed  attemptOutcome = iota // response relayed to the client
	attemptFailover                       // transport error / draining: try the next node
)

// tryNode forwards the buffered request to one worker. Any HTTP
// response except a worker-drain shed is relayed verbatim — including
// 4xx, 429, and breaker_open 503s, which carry their own Retry-After
// and must reach the client untouched. Only transport-level failures
// (connection refused/reset: the node is dead or partitioned) and
// worker 503 draining responses trigger failover: the request
// provably never started solving, so re-sending it to the ring
// successor is safe even though POST is not idempotent in general —
// and inference queries are pure anyway.
func (r *Router) tryNode(w http.ResponseWriter, req *http.Request, n *node, path string, body []byte) attemptOutcome {
	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()
	out, err := http.NewRequestWithContext(ctx, req.Method, n.url+path, bytes.NewReader(body))
	if err != nil {
		return attemptFailover
	}
	out.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(out)
	if err != nil {
		r.fail(n)
		return attemptFailover
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		r.fail(n)
		return attemptFailover
	}
	n.fails.Store(0)
	if resp.StatusCode == http.StatusServiceUnavailable {
		var er serve.ErrorResponse
		if json.Unmarshal(respBody, &er) == nil && er.Error == serve.ShedDraining {
			n.draining.Store(true)
			return attemptFailover
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
	return attemptRelayed
}

// forwardQuery routes one buffered JSON request (single query or
// batch) with bounded failover.
func (r *Router) forwardQuery(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	var b dbBody
	json.Unmarshal(body, &b) // malformed bodies route on "" and get the worker's typed 400
	key := r.routeKey(b.DB)
	seq := r.candidates(key)
	jh := splitmix64(uint64(r.cfg.Seed) ^ hashKey(key))

	failedOver := false
	for i, name := range seq {
		n := r.node(name)
		if n == nil {
			continue
		}
		if n.down.Load() && i+1 < len(seq) {
			// Known-dead node: skip straight to the successor (but if it
			// is the last candidate, try it anyway — a stale down mark
			// must not shed a servable request).
			if !failedOver {
				failedOver = true
				r.stats.failovers.Add(1)
			}
			continue
		}
		if i > 0 {
			time.Sleep(faults.FullJitter(jh, i-1))
		}
		if r.tryNode(w, req, n, req.URL.Path, body) == attemptRelayed {
			r.stats.forwarded.Add(1)
			if failedOver || i > 0 {
				r.stats.failoverSuccess.Add(1)
			}
			return
		}
		if !failedOver {
			failedOver = true
			r.stats.failovers.Add(1)
		}
	}
	r.stats.shedUnavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable, serve.ErrorResponse{
		Error:        serve.ShedNodeUnavailable,
		RetryAfterMS: int64(r.cfg.ProbeInterval / time.Millisecond),
	})
}

// forwardStream routes an NDJSON model stream. Failover applies only
// while no response bytes have been relayed; once streaming begins, a
// worker loss terminates the stream with the typed node_lost record
// instead of a torn body — the models already emitted remain valid.
func (r *Router) forwardStream(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	var b dbBody
	json.Unmarshal(body, &b)
	key := r.routeKey(b.DB)
	seq := r.candidates(key)
	jh := splitmix64(uint64(r.cfg.Seed) ^ hashKey(key))

	failedOver := false
	for i, name := range seq {
		n := r.node(name)
		if n == nil {
			continue
		}
		if n.down.Load() && i+1 < len(seq) {
			if !failedOver {
				failedOver = true
				r.stats.failovers.Add(1)
			}
			continue
		}
		if i > 0 {
			time.Sleep(faults.FullJitter(jh, i-1))
		}
		out, err := http.NewRequestWithContext(req.Context(), req.Method, n.url+req.URL.Path, bytes.NewReader(body))
		if err != nil {
			continue
		}
		out.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(out) // no per-attempt timeout: streams run long
		if err != nil {
			r.fail(n)
			if !failedOver {
				failedOver = true
				r.stats.failovers.Add(1)
			}
			continue
		}
		n.fails.Store(0)
		if resp.StatusCode != http.StatusOK {
			// Typed refusal (shed, bad request): relay it; failover only
			// on drain sheds, mirroring forwardQuery.
			respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if rerr != nil {
				r.fail(n)
				if !failedOver {
					failedOver = true
					r.stats.failovers.Add(1)
				}
				continue
			}
			var er serve.ErrorResponse
			if resp.StatusCode == http.StatusServiceUnavailable &&
				json.Unmarshal(respBody, &er) == nil && er.Error == serve.ShedDraining {
				n.draining.Store(true)
				if !failedOver {
					failedOver = true
					r.stats.failovers.Add(1)
				}
				continue
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(resp.StatusCode)
			w.Write(respBody)
			r.stats.forwarded.Add(1)
			if failedOver || i > 0 {
				r.stats.failoverSuccess.Add(1)
			}
			return
		}
		r.relayStream(w, resp, n)
		r.stats.forwarded.Add(1)
		if failedOver || i > 0 {
			r.stats.failoverSuccess.Add(1)
		}
		return
	}
	r.stats.shedUnavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable, serve.ErrorResponse{
		Error:        serve.ShedNodeUnavailable,
		RetryAfterMS: int64(r.cfg.ProbeInterval / time.Millisecond),
	})
}

// relayStream copies NDJSON lines through, watching for the worker's
// terminal record; if the connection tears before one arrives, the
// router appends its own typed terminal so the client's decoder never
// sees a truncated stream.
func (r *Router) relayStream(w http.ResponseWriter, resp *http.Response, n *node) {
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	sawDone := false
	count := 0
	dec := json.NewDecoder(resp.Body)
	enc := json.NewEncoder(w)
	for {
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			if err != io.EOF {
				r.fail(n)
			}
			break
		}
		var probe serve.StreamLine
		if json.Unmarshal(line, &probe) == nil {
			if probe.Done {
				sawDone = true
			} else {
				count++
			}
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; nothing to repair
		}
		if fl != nil {
			fl.Flush()
		}
	}
	if !sawDone {
		r.stats.streamNodeLost.Add(1)
		enc.Encode(serve.StreamDoneRow{
			Done:  true,
			Cause: serve.StreamCauseNodeLost,
			Count: count,
		})
		if fl != nil {
			fl.Flush()
		}
	}
}

// forwardAny relays a GET (e.g. /v1/semantics) to any healthy node.
func (r *Router) forwardAny(w http.ResponseWriter, req *http.Request) {
	for _, name := range r.ring.Members() {
		n := r.node(name)
		if n == nil || n.down.Load() {
			continue
		}
		if r.tryNode(w, req, n, req.URL.Path, nil) == attemptRelayed {
			return
		}
	}
	r.stats.shedUnavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable, serve.ErrorResponse{
		Error:        serve.ShedNodeUnavailable,
		RetryAfterMS: int64(r.cfg.ProbeInterval / time.Millisecond),
	})
}

// DrainReport summarizes one graceful node departure.
type DrainReport struct {
	Node      string         `json:"node"`
	Artifacts int            `json:"artifacts"` // exported artifact count
	Verdicts  int            `json:"verdicts"`  // exported verdict count
	Imported  map[string]int `json:"imported"`  // successor → artifacts+verdicts accepted
}

// DrainNode gracefully removes a worker: export its warm state, hand
// each slice to the ring successor that will own it after the flip,
// and only then remove the node from the ring — so at every moment a
// key's owner either still has the state or has already received it.
// The worker itself keeps running (draining or not) until the
// operator stops it; the router just stops sending it traffic.
func (r *Router) DrainNode(ctx context.Context, baseURL string) (DrainReport, error) {
	name := strings.TrimSuffix(baseURL, "/")
	rep := DrainReport{Node: name, Imported: map[string]int{}}
	n := r.node(name)
	if n == nil {
		return rep, fmt.Errorf("cluster: unknown node %q", name)
	}
	if r.ring.Size() < 2 {
		// Last node: nothing to hand off to; just drop it.
		r.RemoveNode(name)
		return rep, nil
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/v1/handoff/export", nil)
	if err != nil {
		return rep, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		// Dead worker: no state to save; fall through to the ring flip.
		r.RemoveNode(name)
		return rep, nil
	}
	var h session.Handoff
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&h)
	resp.Body.Close()
	if decErr != nil || resp.StatusCode != http.StatusOK {
		r.RemoveNode(name)
		return rep, nil
	}
	rep.Artifacts = len(h.Artifacts)
	rep.Verdicts = len(h.Verdicts)

	// Partition the export by post-removal owner: the first node in
	// each key's failover sequence that is not the departing one is
	// exactly who owns the key once the ring flips. Down-marked nodes
	// are skipped — requests for their keys fail over past them, so
	// the state lands where the traffic actually goes.
	successorFor := func(key string) string {
		for _, cand := range r.ring.Sequence(key, r.ring.Size()) {
			if cand == name {
				continue
			}
			if sn := r.node(cand); sn == nil || sn.down.Load() {
				continue
			}
			return cand
		}
		return ""
	}
	slices := map[string]*session.Handoff{}
	sliceFor := func(succ string) *session.Handoff {
		s, ok := slices[succ]
		if !ok {
			s = &session.Handoff{}
			slices[succ] = s
		}
		return s
	}
	for _, a := range h.Artifacts {
		if succ := successorFor(a.Raw); succ != "" {
			sl := sliceFor(succ)
			sl.Artifacts = append(sl.Artifacts, a)
		}
	}
	for _, v := range h.Verdicts {
		if succ := successorFor(v.Raw); succ != "" {
			sl := sliceFor(succ)
			sl.Verdicts = append(sl.Verdicts, v)
		}
	}

	for succ, slice := range slices {
		sn := r.node(succ)
		if sn == nil {
			continue
		}
		payload, err := json.Marshal(slice)
		if err != nil {
			continue
		}
		ireq, err := http.NewRequestWithContext(ctx, http.MethodPost, sn.url+"/v1/handoff/import", bytes.NewReader(payload))
		if err != nil {
			continue
		}
		ireq.Header.Set("Content-Type", "application/json")
		iresp, err := r.client.Do(ireq)
		if err != nil {
			r.fail(sn)
			continue // the successor recomputes what it never received
		}
		var ir serve.HandoffImportResponse
		json.NewDecoder(io.LimitReader(iresp.Body, 1<<16)).Decode(&ir)
		iresp.Body.Close()
		rep.Imported[succ] = ir.Artifacts + ir.Verdicts
		r.stats.handoffArts.Add(int64(ir.Artifacts))
		r.stats.handoffVerds.Add(int64(ir.Verdicts))
	}

	r.RemoveNode(name)
	return rep, nil
}

// handleDrain is the HTTP form of DrainNode: POST /v1/cluster/drain?node=<url>.
func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	target := req.URL.Query().Get("node")
	if target == "" {
		writeError(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: "missing ?node=<base url>",
		})
		return
	}
	rep, err := r.DrainNode(req.Context(), target)
	if err != nil {
		writeError(w, http.StatusNotFound, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: err.Error(),
		})
		return
	}
	data, _ := json.Marshal(rep)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// NodeHealth is one worker's entry in the router /healthz document.
type NodeHealth struct {
	Up       bool `json:"up"`
	Draining bool `json:"draining"`
	Fails    int  `json:"fails"`
}

// RouterHealth is the router's /healthz document.
type RouterHealth struct {
	Status string                `json:"status"` // "ok" | "degraded" | "down"
	Nodes  map[string]NodeHealth `json:"nodes"`
	Stats  map[string]int64      `json:"stats"`
}

func (r *Router) health() RouterHealth {
	h := RouterHealth{Nodes: map[string]NodeHealth{}, Stats: map[string]int64{
		"forwarded":             r.stats.forwarded.Load(),
		"failovers":             r.stats.failovers.Load(),
		"failover_success":      r.stats.failoverSuccess.Load(),
		"shed_node_unavailable": r.stats.shedUnavailable.Load(),
		"stream_node_lost":      r.stats.streamNodeLost.Load(),
		"probes":                r.stats.probes.Load(),
		"key_cache_hits":        r.stats.keyHits.Load(),
		"key_cache_misses":      r.stats.keyMisses.Load(),
		"handoff_artifacts":     r.stats.handoffArts.Load(),
		"handoff_verdicts":      r.stats.handoffVerds.Load(),
	}}
	up := 0
	r.nodeMu.RLock()
	for name, n := range r.nodes {
		nh := NodeHealth{Up: !n.down.Load(), Draining: n.draining.Load(), Fails: int(n.fails.Load())}
		if nh.Up {
			up++
		}
		h.Nodes[name] = nh
	}
	total := len(r.nodes)
	r.nodeMu.RUnlock()
	switch {
	case up == total && total > 0:
		h.Status = "ok"
	case up > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	return h
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	data, _ := json.Marshal(r.health())
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := r.health()
	status := http.StatusOK
	ready := true
	if h.Status == "down" {
		status, ready = http.StatusServiceUnavailable, false
	}
	data, _ := json.Marshal(struct {
		Ready bool `json:"ready"`
	}{ready})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}
