package cluster

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disjunct/internal/cache"
	"disjunct/internal/db"
	"disjunct/internal/faults"
	"disjunct/internal/serve"
	"disjunct/internal/session"
)

// RouterConfig tunes the cluster router. The zero value gets defaults
// from NewRouter.
type RouterConfig struct {
	// Replicas is the ring's virtual-node count per worker
	// (default DefaultReplicas).
	Replicas int
	// FailoverMax bounds how many ring successors a request may fail
	// over to beyond its owner (default 2). Only idempotent inference
	// requests fail over; failover never retries a node that already
	// produced a response.
	FailoverMax int
	// ProbeInterval is the health-probe period per node, and also the
	// Retry-After hint on node_unavailable sheds — the cluster-level
	// analogue of the breaker's half-open interval (default 250ms).
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive request/probe failures mark
	// a node down until a probe succeeds again (default 3).
	FailThreshold int
	// Seed feeds the full-jitter backoff between failover attempts and
	// the per-node probe/gossip schedules, so a failover storm after a
	// node kill decorrelates deterministically and two routers with
	// different seeds never probe in lockstep.
	Seed int64
	// GossipInterval is the period of the membership/health gossip
	// exchange with each peer router (default 500ms). Irrelevant with
	// no peers.
	GossipInterval time.Duration
	// KeyCache bounds the DB-text → route-key LRU (default 4096).
	KeyCache int
	// Transport overrides the HTTP transport to the workers — the
	// node-chaos hook (default http.DefaultTransport).
	Transport http.RoundTripper
	// RequestTimeout bounds one forwarded attempt (default 30s;
	// streams are exempt).
	RequestTimeout time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.FailoverMax < 0 {
		c.FailoverMax = 0
	} else if c.FailoverMax == 0 {
		c.FailoverMax = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 500 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.KeyCache <= 0 {
		c.KeyCache = 4096
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// node is the router's view of one worker.
type node struct {
	name string // ring member id == base URL
	url  string // base URL, no trailing slash

	down     atomic.Bool
	draining atomic.Bool
	fails    atomic.Int32 // consecutive failures toward FailThreshold
	// probed flips true after the first firsthand probe of this node.
	// Until then, gossip from a peer router may fill in down/draining/
	// breaker state; once we have probed ourselves, firsthand knowledge
	// always wins over secondhand gossip.
	probed atomic.Bool

	bkMu         sync.Mutex
	openBreakers map[string]bool // semantics → breaker currently open
}

// setOpenBreakers replaces the node's known-open breaker set.
func (n *node) setOpenBreakers(open map[string]bool) {
	n.bkMu.Lock()
	n.openBreakers = open
	n.bkMu.Unlock()
}

// breakerOpen reports whether the node's breaker for a semantics is
// known open. Unknown semantics (or no probe data yet) reads closed —
// breaker routing is an optimization hint, never a reason to shed.
func (n *node) breakerOpen(sem string) bool {
	if sem == "" {
		return false
	}
	n.bkMu.Lock()
	defer n.bkMu.Unlock()
	return n.openBreakers[sem]
}

// openBreakerList returns the sorted open-breaker semantics names.
func (n *node) openBreakerList() []string {
	n.bkMu.Lock()
	out := make([]string, 0, len(n.openBreakers))
	for sem := range n.openBreakers {
		out = append(out, sem)
	}
	n.bkMu.Unlock()
	sort.Strings(out)
	return out
}

// routerStats are the monotonic counters surfaced by the router's
// /healthz — the smoke harness computes the post-kill failover
// completion ratio from failovers / failover_success.
type routerStats struct {
	forwarded       atomic.Int64 // requests relayed with a worker response
	failovers       atomic.Int64 // requests that needed ≥1 failover hop
	failoverSuccess atomic.Int64 // of those, requests a later node answered
	shedUnavailable atomic.Int64 // typed node_unavailable sheds
	streamNodeLost  atomic.Int64 // streams terminated with cause node_lost
	probes          atomic.Int64
	keyHits         atomic.Int64
	keyMisses       atomic.Int64
	handoffArts     atomic.Int64 // artifacts moved by drain handoffs
	handoffVerds    atomic.Int64 // verdicts moved by drain handoffs
	handoffEsts     atomic.Int64 // planner estimates moved by drain handoffs
	breakerRouted   atomic.Int64 // requests routed around an open breaker
	gossipSent      atomic.Int64 // gossip exchanges initiated
	gossipRecv      atomic.Int64 // gossip messages received
	gossipAdopted   atomic.Int64 // membership adoptions from gossip
	joins           atomic.Int64 // warm joins completed
	joinArts        atomic.Int64 // artifacts shipped to joining nodes
	joinVerds       atomic.Int64 // verdicts shipped to joining nodes
}

// Router is the stateless cluster front: it owns the ring, the node
// health state, and the drain orchestration, and forwards every
// request to the worker owning its compiled-DB fingerprint. It holds
// no inference state of its own — restarting the router loses nothing.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client

	nodeMu sync.RWMutex
	nodes  map[string]*node

	// memberMu serializes membership mutations so the (epoch, member
	// set) pair every gossip message carries is always a snapshot some
	// mutation actually produced — never a torn read mid-flip.
	memberMu sync.Mutex
	epoch    atomic.Uint64

	peerMu sync.RWMutex
	peers  []string // peer router base URLs

	keyMu   sync.Mutex
	keyLRU  *list.List               // front = most recent; values are *keyEntry
	keyIdx  map[string]*list.Element // db text → entry
	stats   routerStats
	mux     *http.ServeMux
	stopped chan struct{}
	stopOne sync.Once
	probeWG sync.WaitGroup
}

type keyEntry struct {
	text string
	key  string
}

// NewRouter builds a router over an initial worker set (base URLs) and
// starts its health-probe loop. Call Close to stop probing.
func NewRouter(cfg RouterConfig, workers []string) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Replicas),
		client:  &http.Client{Transport: cfg.Transport},
		nodes:   map[string]*node{},
		keyLRU:  list.New(),
		keyIdx:  map[string]*list.Element{},
		stopped: make(chan struct{}),
	}
	for _, w := range workers {
		r.AddNode(w)
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /v1/infer/literal", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/infer/formula", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/model", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/batch", r.forwardQuery)
	r.mux.HandleFunc("POST /v1/models/stream", r.forwardStream)
	r.mux.HandleFunc("GET /v1/semantics", r.forwardAny)
	r.mux.HandleFunc("POST /v1/cluster/drain", r.handleDrain)
	r.mux.HandleFunc("POST /v1/cluster/join", r.handleJoin)
	r.mux.HandleFunc("POST /v1/cluster/gossip", r.handleGossip)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /readyz", r.handleReadyz)
	r.probeWG.Add(1)
	go r.gossipLoop()
	return r
}

// Handler returns the router's HTTP handler tree.
func (r *Router) Handler() http.Handler { return r.mux }

// Close stops the probe loop. Idempotent.
func (r *Router) Close() {
	r.stopOne.Do(func() { close(r.stopped) })
	r.probeWG.Wait()
}

// AddNode inserts a worker (base URL) into the ring and health set,
// bumping the membership epoch when the ring actually changed.
func (r *Router) AddNode(baseURL string) {
	name := strings.TrimSuffix(baseURL, "/")
	r.memberMu.Lock()
	r.nodeMu.Lock()
	n, existed := r.nodes[name]
	if !existed {
		n = &node{name: name, url: name}
		r.nodes[name] = n
	}
	r.nodeMu.Unlock()
	if r.ring.Add(name) {
		r.epoch.Add(1)
	}
	r.memberMu.Unlock()
	if !existed {
		r.startProbe(n)
	}
}

// RemoveNode drops a worker abruptly — no handoff. Use DrainNode for
// the graceful path.
func (r *Router) RemoveNode(baseURL string) {
	name := strings.TrimSuffix(baseURL, "/")
	r.memberMu.Lock()
	if r.ring.Remove(name) {
		r.epoch.Add(1)
	}
	r.nodeMu.Lock()
	delete(r.nodes, name)
	r.nodeMu.Unlock()
	r.memberMu.Unlock()
}

// Epoch reports the current membership epoch.
func (r *Router) Epoch() uint64 { return r.epoch.Load() }

// membership snapshots the epoch-tagged member set under the mutation
// lock, so the pair is always consistent.
func (r *Router) membership() Membership {
	r.memberMu.Lock()
	m := Membership{Epoch: r.epoch.Load(), Members: r.ring.Members()}
	r.memberMu.Unlock()
	return m
}

// adoptMembership installs a gossiped membership if it beats the local
// one under the (epoch, hash) order, diff-updating the ring (only
// joined/left nodes' keys remap) and the node health set. Reports
// whether an adoption happened.
func (r *Router) adoptMembership(in Membership) bool {
	in = in.normalize()
	r.memberMu.Lock()
	cur := Membership{Epoch: r.epoch.Load(), Members: r.ring.Members()}
	if !in.Beats(cur) {
		r.memberMu.Unlock()
		return false
	}
	want := make(map[string]bool, len(in.Members))
	for _, m := range in.Members {
		want[m] = true
	}
	var added []*node
	r.nodeMu.Lock()
	for name := range r.nodes {
		if !want[name] {
			delete(r.nodes, name)
		}
	}
	for _, m := range in.Members {
		if _, ok := r.nodes[m]; !ok {
			n := &node{name: m, url: m}
			r.nodes[m] = n
			added = append(added, n)
		}
	}
	r.nodeMu.Unlock()
	r.ring.SetMembers(in.Members)
	r.epoch.Store(in.Epoch)
	r.memberMu.Unlock()
	r.stats.gossipAdopted.Add(1)
	for _, n := range added {
		r.startProbe(n)
	}
	return true
}

// AddPeer registers a peer router for membership/health gossip.
// One-sided peering suffices for convergence: each exchange is
// push-pull (we send our state, the reply carries theirs), so the peer
// need not list us back.
func (r *Router) AddPeer(baseURL string) {
	name := strings.TrimSuffix(baseURL, "/")
	r.peerMu.Lock()
	for _, p := range r.peers {
		if p == name {
			r.peerMu.Unlock()
			return
		}
	}
	r.peers = append(r.peers, name)
	r.peerMu.Unlock()
}

// Peers lists the gossip peers.
func (r *Router) Peers() []string {
	r.peerMu.RLock()
	out := append([]string(nil), r.peers...)
	r.peerMu.RUnlock()
	return out
}

// Nodes lists the current members, sorted.
func (r *Router) Nodes() []string { return r.ring.Members() }

func (r *Router) node(name string) *node {
	r.nodeMu.RLock()
	n := r.nodes[name]
	r.nodeMu.RUnlock()
	return n
}

// fail records one failure against a node; at FailThreshold the node
// goes down until a probe succeeds.
func (r *Router) fail(n *node) {
	if n == nil {
		return
	}
	if int(n.fails.Add(1)) >= r.cfg.FailThreshold {
		n.down.Store(true)
	}
}

// recover marks a node healthy again (probe success).
func (r *Router) recover(n *node) {
	n.fails.Store(0)
	n.down.Store(false)
}

// ProbeDelay is the seeded jittered delay before probe `round` of
// `node`: uniform in [interval/2, 3·interval/2), drawn from a
// splitmix64 stream keyed by (seed, node, round). The full-jitter
// discipline matches internal/faults — deterministic for a given seed,
// decorrelated across seeds — so two routers with different seeds (or
// one router's probes of different nodes) never fall into lockstep
// after a partition heals. Exported for the desynchronization test.
func ProbeDelay(seed int64, node string, round uint64, interval time.Duration) time.Duration {
	h := splitmix64(uint64(seed) ^ fnv64a(node) ^ splitmix64(round+0x632be59bd9b4e019))
	frac := float64(h>>11) / float64(1<<53) // uniform [0,1)
	return interval/2 + time.Duration(frac*float64(interval))
}

// startProbe spawns the per-node probe schedule. The goroutine exits
// when the router stops or the node is removed (or replaced) in the
// health set — a stale goroutine never probes on behalf of a new
// registration.
func (r *Router) startProbe(n *node) {
	r.probeWG.Add(1)
	go func() {
		defer r.probeWG.Done()
		t := time.NewTimer(0)
		if !t.Stop() {
			<-t.C
		}
		for round := uint64(0); ; round++ {
			t.Reset(ProbeDelay(r.cfg.Seed, n.name, round, r.cfg.ProbeInterval))
			select {
			case <-r.stopped:
				t.Stop()
				return
			case <-t.C:
			}
			if r.node(n.name) != n {
				return
			}
			r.probeOne(n)
		}
	}()
}

// probeOne is the probe-driven half-open mechanism at node level: a
// downed node takes no traffic until a probe succeeds, at which point
// it is instantly fully restored. The probe interval is therefore the
// honest Retry-After hint for node_unavailable sheds. Probing GET
// /healthz (not /readyz) gets liveness and the per-semantics breaker
// states in one round trip: the healthz Status field distinguishes
// "ok" from "draining" and "prewarming", and the breakers map feeds
// breaker-aware routing.
func (r *Router) probeOne(n *node) {
	r.stats.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		n.probed.Store(true)
		n.draining.Store(false)
		r.fail(n)
		return
	}
	var h struct {
		Status   string `json:"status"`
		Breakers map[string]struct {
			State string `json:"state"`
		} `json:"breakers"`
	}
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h)
	resp.Body.Close()
	n.probed.Store(true)
	if resp.StatusCode != http.StatusOK || decErr != nil {
		n.draining.Store(false)
		r.fail(n)
		return
	}
	open := map[string]bool{}
	for sem, b := range h.Breakers {
		if b.State == "open" {
			open[sem] = true
		}
	}
	n.setOpenBreakers(open)
	switch h.Status {
	case "ok":
		n.draining.Store(false)
		r.recover(n)
	case serve.ShedDraining:
		// Alive but must take no new traffic; track the distinction for
		// /healthz, route around it either way.
		n.draining.Store(true)
		r.fail(n)
	default:
		// "prewarming" (or any future not-ready state): alive, not
		// serving yet.
		n.draining.Store(false)
		r.fail(n)
	}
}

// routeKey maps a request's database text to its routing key: the raw
// compiled-DB fingerprint (cache.RawKey over the grounded CNF), which
// is exactly the session key workers memoize under — so routing on it
// gives perfect warm-session locality without the expensive canonical
// labeling. Unparseable texts route on the text itself; the owning
// worker will produce the typed 400.
func (r *Router) routeKey(text string) string {
	r.keyMu.Lock()
	if el, ok := r.keyIdx[text]; ok {
		r.keyLRU.MoveToFront(el)
		k := el.Value.(*keyEntry).key
		r.keyMu.Unlock()
		r.stats.keyHits.Add(1)
		return k
	}
	r.keyMu.Unlock()
	r.stats.keyMisses.Add(1)

	key := "text:" + text
	if d, err := db.Parse(text); err == nil {
		key = cache.RawKey(d.N(), d.ToCNF())
	}

	r.keyMu.Lock()
	if el, ok := r.keyIdx[text]; ok { // racing fill: keep the winner
		r.keyLRU.MoveToFront(el)
		key = el.Value.(*keyEntry).key
	} else {
		r.keyIdx[text] = r.keyLRU.PushFront(&keyEntry{text: text, key: key})
		for r.keyLRU.Len() > r.cfg.KeyCache {
			victim := r.keyLRU.Back()
			r.keyLRU.Remove(victim)
			delete(r.keyIdx, victim.Value.(*keyEntry).text)
		}
	}
	r.keyMu.Unlock()
	return key
}

// dbBody is what the router needs from any query body: the database
// text for routing, and the semantics name for breaker-aware candidate
// ordering. For batch bodies Semantics is the batch default — per-query
// overrides stay the worker's business.
type dbBody struct {
	DB        string `json:"db"`
	Semantics string `json:"semantics"`
}

// readBody buffers the request body once so failover can replay it.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: "body: " + err.Error(),
		})
		return nil, false
	}
	return body, true
}

func writeError(w http.ResponseWriter, status int, resp serve.ErrorResponse) {
	if resp.RetryAfterMS > 0 {
		secs := (resp.RetryAfterMS + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	data, _ := json.Marshal(resp)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// candidates computes a request's failover sequence: the key's owner
// followed by up to FailoverMax distinct ring successors.
func (r *Router) candidates(key string) []string {
	return r.ring.Sequence(key, 1+r.cfg.FailoverMax)
}

// breakerReorder stably partitions a candidate sequence for one
// (key, semantics) pair: nodes whose breaker for that semantics is
// known open move to the back, so the request lands on a worker that
// will actually attempt it instead of burning a failover hop on a
// guaranteed breaker_open 503. Open-breaker nodes stay in the sequence
// as a last resort — stale breaker gossip must never shed a request on
// its own; if every candidate's breaker is open, the owner's own typed
// breaker_open refusal (with its Retry-After) reaches the client
// verbatim, exactly as before. Reports whether the primary changed,
// which is what the breaker_routed counter counts: verdicts are
// node-independent (the benchgate cluster section proves NP identity),
// so rerouting is pure accounting, never a semantic change.
func (r *Router) breakerReorder(seq []string, sem string) ([]string, bool) {
	if sem == "" || len(seq) < 2 {
		return seq, false
	}
	clear := make([]string, 0, len(seq))
	var blocked []string
	for _, name := range seq {
		if n := r.node(name); n != nil && n.breakerOpen(sem) {
			blocked = append(blocked, name)
		} else {
			clear = append(clear, name)
		}
	}
	if len(blocked) == 0 || len(clear) == 0 {
		return seq, false
	}
	return append(clear, blocked...), clear[0] != seq[0]
}

// attemptOutcome classifies one forwarded attempt.
type attemptOutcome int

const (
	attemptRelayed  attemptOutcome = iota // response relayed to the client
	attemptFailover                       // transport error / draining: try the next node
)

// tryNode forwards the buffered request to one worker. Any HTTP
// response except a worker-drain shed is relayed verbatim — including
// 4xx, 429, and breaker_open 503s, which carry their own Retry-After
// and must reach the client untouched. Only transport-level failures
// (connection refused/reset: the node is dead or partitioned) and
// worker 503 draining responses trigger failover: the request
// provably never started solving, so re-sending it to the ring
// successor is safe even though POST is not idempotent in general —
// and inference queries are pure anyway.
func (r *Router) tryNode(w http.ResponseWriter, req *http.Request, n *node, path string, body []byte) attemptOutcome {
	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()
	out, err := http.NewRequestWithContext(ctx, req.Method, n.url+path, bytes.NewReader(body))
	if err != nil {
		return attemptFailover
	}
	out.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(out)
	if err != nil {
		r.fail(n)
		return attemptFailover
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		r.fail(n)
		return attemptFailover
	}
	n.fails.Store(0)
	if resp.StatusCode == http.StatusServiceUnavailable {
		var er serve.ErrorResponse
		if json.Unmarshal(respBody, &er) == nil && er.Error == serve.ShedDraining {
			n.draining.Store(true)
			return attemptFailover
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
	return attemptRelayed
}

// forwardQuery routes one buffered JSON request (single query or
// batch) with bounded failover.
func (r *Router) forwardQuery(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	var b dbBody
	json.Unmarshal(body, &b) // malformed bodies route on "" and get the worker's typed 400
	key := r.routeKey(b.DB)
	seq, rerouted := r.breakerReorder(r.candidates(key), b.Semantics)
	if rerouted {
		r.stats.breakerRouted.Add(1)
	}
	jh := splitmix64(uint64(r.cfg.Seed) ^ hashKey(key))

	failedOver := false
	for i, name := range seq {
		n := r.node(name)
		if n == nil {
			continue
		}
		if n.down.Load() && i+1 < len(seq) {
			// Known-dead node: skip straight to the successor (but if it
			// is the last candidate, try it anyway — a stale down mark
			// must not shed a servable request).
			if !failedOver {
				failedOver = true
				r.stats.failovers.Add(1)
			}
			continue
		}
		if i > 0 {
			time.Sleep(faults.FullJitter(jh, i-1))
		}
		if r.tryNode(w, req, n, req.URL.Path, body) == attemptRelayed {
			r.stats.forwarded.Add(1)
			if failedOver || i > 0 {
				r.stats.failoverSuccess.Add(1)
			}
			return
		}
		if !failedOver {
			failedOver = true
			r.stats.failovers.Add(1)
		}
	}
	r.stats.shedUnavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable, serve.ErrorResponse{
		Error:        serve.ShedNodeUnavailable,
		RetryAfterMS: int64(r.cfg.ProbeInterval / time.Millisecond),
	})
}

// forwardStream routes an NDJSON model stream. Failover applies only
// while no response bytes have been relayed; once streaming begins, a
// worker loss terminates the stream with the typed node_lost record
// instead of a torn body — the models already emitted remain valid.
func (r *Router) forwardStream(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	var b dbBody
	json.Unmarshal(body, &b)
	key := r.routeKey(b.DB)
	seq, rerouted := r.breakerReorder(r.candidates(key), b.Semantics)
	if rerouted {
		r.stats.breakerRouted.Add(1)
	}
	jh := splitmix64(uint64(r.cfg.Seed) ^ hashKey(key))

	failedOver := false
	for i, name := range seq {
		n := r.node(name)
		if n == nil {
			continue
		}
		if n.down.Load() && i+1 < len(seq) {
			if !failedOver {
				failedOver = true
				r.stats.failovers.Add(1)
			}
			continue
		}
		if i > 0 {
			time.Sleep(faults.FullJitter(jh, i-1))
		}
		out, err := http.NewRequestWithContext(req.Context(), req.Method, n.url+req.URL.Path, bytes.NewReader(body))
		if err != nil {
			continue
		}
		out.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(out) // no per-attempt timeout: streams run long
		if err != nil {
			r.fail(n)
			if !failedOver {
				failedOver = true
				r.stats.failovers.Add(1)
			}
			continue
		}
		n.fails.Store(0)
		if resp.StatusCode != http.StatusOK {
			// Typed refusal (shed, bad request): relay it; failover only
			// on drain sheds, mirroring forwardQuery.
			respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if rerr != nil {
				r.fail(n)
				if !failedOver {
					failedOver = true
					r.stats.failovers.Add(1)
				}
				continue
			}
			var er serve.ErrorResponse
			if resp.StatusCode == http.StatusServiceUnavailable &&
				json.Unmarshal(respBody, &er) == nil && er.Error == serve.ShedDraining {
				n.draining.Store(true)
				if !failedOver {
					failedOver = true
					r.stats.failovers.Add(1)
				}
				continue
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(resp.StatusCode)
			w.Write(respBody)
			r.stats.forwarded.Add(1)
			if failedOver || i > 0 {
				r.stats.failoverSuccess.Add(1)
			}
			return
		}
		r.relayStream(w, resp, n)
		r.stats.forwarded.Add(1)
		if failedOver || i > 0 {
			r.stats.failoverSuccess.Add(1)
		}
		return
	}
	r.stats.shedUnavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable, serve.ErrorResponse{
		Error:        serve.ShedNodeUnavailable,
		RetryAfterMS: int64(r.cfg.ProbeInterval / time.Millisecond),
	})
}

// relayStream copies NDJSON lines through, watching for the worker's
// terminal record; if the connection tears before one arrives, the
// router appends its own typed terminal so the client's decoder never
// sees a truncated stream.
func (r *Router) relayStream(w http.ResponseWriter, resp *http.Response, n *node) {
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	sawDone := false
	count := 0
	dec := json.NewDecoder(resp.Body)
	enc := json.NewEncoder(w)
	for {
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			if err != io.EOF {
				r.fail(n)
			}
			break
		}
		var probe serve.StreamLine
		if json.Unmarshal(line, &probe) == nil {
			if probe.Done {
				sawDone = true
			} else {
				count++
			}
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; nothing to repair
		}
		if fl != nil {
			fl.Flush()
		}
	}
	if !sawDone {
		r.stats.streamNodeLost.Add(1)
		enc.Encode(serve.StreamDoneRow{
			Done:  true,
			Cause: serve.StreamCauseNodeLost,
			Count: count,
		})
		if fl != nil {
			fl.Flush()
		}
	}
}

// forwardAny relays a GET (e.g. /v1/semantics) to any healthy node.
func (r *Router) forwardAny(w http.ResponseWriter, req *http.Request) {
	for _, name := range r.ring.Members() {
		n := r.node(name)
		if n == nil || n.down.Load() {
			continue
		}
		if r.tryNode(w, req, n, req.URL.Path, nil) == attemptRelayed {
			return
		}
	}
	r.stats.shedUnavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable, serve.ErrorResponse{
		Error:        serve.ShedNodeUnavailable,
		RetryAfterMS: int64(r.cfg.ProbeInterval / time.Millisecond),
	})
}

// DrainReport summarizes one graceful node departure.
type DrainReport struct {
	Node      string         `json:"node"`
	Artifacts int            `json:"artifacts"` // exported artifact count
	Verdicts  int            `json:"verdicts"`  // exported verdict count
	Estimates int            `json:"estimates"` // exported planner cost-model entries
	Imported  map[string]int `json:"imported"`  // successor → artifacts+verdicts+estimates accepted
}

// DrainNode gracefully removes a worker: export its warm state, hand
// each slice to the ring successor that will own it after the flip,
// and only then remove the node from the ring — so at every moment a
// key's owner either still has the state or has already received it.
// The worker itself keeps running (draining or not) until the
// operator stops it; the router just stops sending it traffic.
func (r *Router) DrainNode(ctx context.Context, baseURL string) (DrainReport, error) {
	name := strings.TrimSuffix(baseURL, "/")
	rep := DrainReport{Node: name, Imported: map[string]int{}}
	n := r.node(name)
	if n == nil {
		return rep, fmt.Errorf("cluster: unknown node %q", name)
	}
	if r.ring.Size() < 2 {
		// Last node: nothing to hand off to; just drop it.
		r.RemoveNode(name)
		r.gossipAll(ctx)
		return rep, nil
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/v1/handoff/export", nil)
	if err != nil {
		return rep, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		// Dead worker: no state to save; fall through to the ring flip.
		r.RemoveNode(name)
		r.gossipAll(ctx)
		return rep, nil
	}
	var h session.Handoff
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&h)
	resp.Body.Close()
	if decErr != nil || resp.StatusCode != http.StatusOK {
		r.RemoveNode(name)
		r.gossipAll(ctx)
		return rep, nil
	}
	rep.Artifacts = len(h.Artifacts)
	rep.Verdicts = len(h.Verdicts)
	rep.Estimates = len(h.Estimates)

	// Partition the export by post-removal owner: the first node in
	// each key's failover sequence that is not the departing one is
	// exactly who owns the key once the ring flips. Down-marked nodes
	// are skipped — requests for their keys fail over past them, so
	// the state lands where the traffic actually goes.
	successorFor := func(key string) string {
		for _, cand := range r.ring.Sequence(key, r.ring.Size()) {
			if cand == name {
				continue
			}
			if sn := r.node(cand); sn == nil || sn.down.Load() {
				continue
			}
			return cand
		}
		return ""
	}
	slices := map[string]*session.Handoff{}
	sliceFor := func(succ string) *session.Handoff {
		s, ok := slices[succ]
		if !ok {
			s = &session.Handoff{}
			slices[succ] = s
		}
		return s
	}
	for _, a := range h.Artifacts {
		if succ := successorFor(a.Raw); succ != "" {
			sl := sliceFor(succ)
			sl.Artifacts = append(sl.Artifacts, a)
		}
	}
	for _, v := range h.Verdicts {
		if succ := successorFor(v.Raw); succ != "" {
			sl := sliceFor(succ)
			sl.Verdicts = append(sl.Verdicts, v)
		}
	}
	// Planner cost-model entries are sliced by the same fingerprint the
	// ring routes on, so the successor that inherits a key's traffic
	// also inherits its calibrated estimate.
	for _, e := range h.Estimates {
		if succ := successorFor(e.Raw); succ != "" {
			sl := sliceFor(succ)
			sl.Estimates = append(sl.Estimates, e)
		}
	}

	for succ, slice := range slices {
		sn := r.node(succ)
		if sn == nil {
			continue
		}
		payload, err := json.Marshal(slice)
		if err != nil {
			continue
		}
		ireq, err := http.NewRequestWithContext(ctx, http.MethodPost, sn.url+"/v1/handoff/import", bytes.NewReader(payload))
		if err != nil {
			continue
		}
		ireq.Header.Set("Content-Type", "application/json")
		iresp, err := r.client.Do(ireq)
		if err != nil {
			r.fail(sn)
			continue // the successor recomputes what it never received
		}
		var ir serve.HandoffImportResponse
		json.NewDecoder(io.LimitReader(iresp.Body, 1<<16)).Decode(&ir)
		iresp.Body.Close()
		rep.Imported[succ] = ir.Artifacts + ir.Verdicts + ir.Estimates
		r.stats.handoffArts.Add(int64(ir.Artifacts))
		r.stats.handoffVerds.Add(int64(ir.Verdicts))
		r.stats.handoffEsts.Add(int64(ir.Estimates))
	}

	r.RemoveNode(name)
	r.gossipAll(ctx)
	return rep, nil
}

// handleDrain is the HTTP form of DrainNode: POST /v1/cluster/drain?node=<url>.
func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	target := req.URL.Query().Get("node")
	if target == "" {
		writeError(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: "missing ?node=<base url>",
		})
		return
	}
	rep, err := r.DrainNode(req.Context(), target)
	if err != nil {
		writeError(w, http.StatusNotFound, serve.ErrorResponse{
			Error: serve.ReasonBadRequest, Detail: err.Error(),
		})
		return
	}
	data, _ := json.Marshal(rep)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// NodeHealth is one worker's entry in the router /healthz document.
type NodeHealth struct {
	Up       bool `json:"up"`
	Draining bool `json:"draining"`
	Fails    int  `json:"fails"`
	// Probed reports firsthand probe contact; false means any health
	// shown is secondhand gossip (or the pre-probe default).
	Probed bool `json:"probed"`
	// OpenBreakers lists the semantics whose breaker is open on this
	// worker — the input to breaker-aware routing.
	OpenBreakers []string `json:"open_breakers,omitempty"`
}

// RouterHealth is the router's /healthz document.
type RouterHealth struct {
	Status string                `json:"status"` // "ok" | "degraded" | "down"
	Epoch  uint64                `json:"epoch"`  // membership epoch
	Peers  []string              `json:"peers,omitempty"`
	Nodes  map[string]NodeHealth `json:"nodes"`
	Stats  map[string]int64      `json:"stats"`
}

func (r *Router) health() RouterHealth {
	h := RouterHealth{Epoch: r.epoch.Load(), Peers: r.Peers(), Nodes: map[string]NodeHealth{}, Stats: map[string]int64{
		"forwarded":             r.stats.forwarded.Load(),
		"failovers":             r.stats.failovers.Load(),
		"failover_success":      r.stats.failoverSuccess.Load(),
		"shed_node_unavailable": r.stats.shedUnavailable.Load(),
		"stream_node_lost":      r.stats.streamNodeLost.Load(),
		"probes":                r.stats.probes.Load(),
		"key_cache_hits":        r.stats.keyHits.Load(),
		"key_cache_misses":      r.stats.keyMisses.Load(),
		"handoff_artifacts":     r.stats.handoffArts.Load(),
		"handoff_verdicts":      r.stats.handoffVerds.Load(),
		"handoff_estimates":     r.stats.handoffEsts.Load(),
		"breaker_routed":        r.stats.breakerRouted.Load(),
		"gossip_sent":           r.stats.gossipSent.Load(),
		"gossip_received":       r.stats.gossipRecv.Load(),
		"gossip_adopted":        r.stats.gossipAdopted.Load(),
		"joins":                 r.stats.joins.Load(),
		"join_artifacts":        r.stats.joinArts.Load(),
		"join_verdicts":         r.stats.joinVerds.Load(),
	}}
	up := 0
	r.nodeMu.RLock()
	for name, n := range r.nodes {
		nh := NodeHealth{
			Up: !n.down.Load(), Draining: n.draining.Load(),
			Fails: int(n.fails.Load()), Probed: n.probed.Load(),
			OpenBreakers: n.openBreakerList(),
		}
		if nh.Up {
			up++
		}
		h.Nodes[name] = nh
	}
	total := len(r.nodes)
	r.nodeMu.RUnlock()
	switch {
	case up == total && total > 0:
		h.Status = "ok"
	case up > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	return h
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	data, _ := json.Marshal(r.health())
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := r.health()
	status := http.StatusOK
	ready := true
	if h.Status == "down" {
		status, ready = http.StatusServiceUnavailable, false
	}
	data, _ := json.Marshal(struct {
		Ready bool `json:"ready"`
	}{ready})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}
