// Package dsm implements Przymusinski's Disjunctive Stable Model
// semantics (§5.2 of the paper), generalising the stable models of
// Gelfond and Lifschitz to disjunctive databases:
//
//	DSM(DB) = {M : M ∈ MM(DB^M)}
//
// where DB^M is the Gelfond–Lifschitz reduct. Disjunctive stable
// models are minimal (classical) models of DB, and for positive DB
// (no negation) DSM(DB) = MM(DB).
//
// Complexity shape: literal and formula inference Π₂ᵖ-complete; model
// existence is trivial for positive DDBs (DSM = MM) and Σ₂ᵖ-complete
// in general (Table 2).
//
// Algorithms: stability of a candidate M is one NP-oracle call
// (minimality of M among models of DB^M — the reduct is computed in
// polynomial time, as the paper notes for the Π₂ᵖ membership proof of
// Theorem 5.11). Candidates are drawn from the minimal models of DB,
// enumerated by the iterative SAT engine.
package dsm

import (
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/par"
)

func init() {
	core.Register("DSM", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "DSM",
		Complexity: "literal/formula Πᵖ₂-complete; existence O(1) positive / Σᵖ₂-complete in general",
		Cells:      core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellSigma2},
	})
}

// Sem is the DSM semantics.
type Sem struct {
	opts core.Options
}

// New returns a DSM instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts}
}

// Name returns "DSM".
func (s *Sem) Name() string { return "DSM" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

// IsStable reports whether m is a disjunctive stable model of d:
// m ∈ MM(d^m). The reduct is polynomial; the minimality check is one
// NP-oracle call.
func (s *Sem) IsStable(d *db.DB, m logic.Interp) bool {
	red := d.Reduct(m)
	if !red.Sat(m) {
		return false
	}
	eng := models.NewEngine(red, s.opts.Oracle)
	return eng.IsMinimal(m)
}

// Models enumerates DSM(DB): the minimal models of DB that pass the
// stability check. (DSM(DB) ⊆ MM(DB), so enumerating minimal models
// loses nothing.)
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	eng := models.NewEngine(d, s.opts.Oracle)
	eng.MinimalModels(0, func(m logic.Interp) bool {
		if !s.IsStable(d, m) {
			return true
		}
		count++
		if !yield(m) {
			return false
		}
		return limit <= 0 || count < limit
	})
	return count, nil
}

// ModelsPar is Models in two parallel phases: minimal-model candidates
// from the region-decomposed worker pool, then the one-NP-call
// stability checks (reduct + minimality) run concurrently over the
// collected candidates. Same queries as the serial route — one
// stability check per minimal model — so the oracle-call total is
// worker-count-invariant; with limit > 0 candidate collection still
// runs to completion before filtering. Yield order is
// nondeterministic.
func (s *Sem) ModelsPar(d *db.DB, limit int, yield func(logic.Interp) bool, opt models.ParOptions) (count int, err error) {
	defer budget.Recover(&err)
	eng := models.NewEngine(d, s.opts.Oracle)
	var cands []logic.Interp
	eng.MinimalModelsPar(0, func(m logic.Interp) bool {
		cands = append(cands, m) // emitter serialises this callback
		return true
	}, opt)
	stable := par.MapBool(opt.Workers, len(cands), func(i int) bool {
		return s.IsStable(d, cands[i])
	})
	for i, ok := range stable {
		if !ok {
			continue
		}
		count++
		if !yield(cands[i]) || (limit > 0 && count >= limit) {
			break
		}
	}
	return count, nil
}

// HasModel decides DSM(DB) ≠ ∅ — the Σ₂ᵖ-complete cell of Table 2:
// the search over (minimal) model candidates with a one-NP-call
// stability verifier.
func (s *Sem) HasModel(d *db.DB) (bool, error) {
	if !d.HasNegation() && !d.HasIntegrityClauses() {
		return true, nil // DSM = MM on positive DBs, and MM ≠ ∅ (O(1))
	}
	found := false
	_, err := s.Models(d, 1, func(logic.Interp) bool {
		found = true
		return false
	})
	return found, err
}

// InferLiteral decides DSM(DB) ⊨ l (truth in every stable model;
// Π₂ᵖ-complete, Table 1/2).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.InferFormula(d, logic.LitF(l))
}

// InferFormula decides DSM(DB) ⊨ f: the co-search for a stable
// countermodel (Theorem 5.11's shape: guess M, verify stability with
// an NP oracle and check M ⊭ F).
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (bool, error) {
	holds := true
	_, err := s.Models(d, 0, func(m logic.Interp) bool {
		if !f.Eval(m) {
			holds = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return holds, nil
}

// CheckModel reports whether m is a disjunctive stable model (the
// polynomial reduct plus one NP-oracle minimality call — the verifier
// of Theorem 5.11).
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (ok bool, err error) {
	defer budget.Recover(&err)
	return s.IsStable(d, m), nil
}
