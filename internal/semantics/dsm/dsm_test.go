package dsm

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func TestRegistered(t *testing.T) {
	if _, ok := core.New("DSM", core.Options{}); !ok {
		t.Fatalf("DSM not registered")
	}
}

func TestClassicStableExamples(t *testing.T) {
	s := New(core.Options{})

	// {a ← ¬b, b ← ¬a}: two stable models {a} and {b}.
	d := dbtest.MustParse("a :- not b. b :- not a.")
	var got []string
	s.Models(d, 0, func(m logic.Interp) bool {
		got = append(got, m.String(d.Voc))
		return true
	})
	if len(got) != 2 {
		t.Fatalf("even loop: stable models %v, want 2", got)
	}

	// {a ← ¬a}: no stable model.
	d2 := dbtest.MustParse("a :- not a.")
	if ok, _ := s.HasModel(d2); ok {
		t.Fatalf("odd loop must have no stable model")
	}

	// Disjunctive: {a ∨ b}: stable models {a}, {b}.
	d3 := dbtest.MustParse("a | b.")
	count, _ := s.Models(d3, 0, func(logic.Interp) bool { return true })
	if count != 2 {
		t.Fatalf("a|b: %d stable models, want 2", count)
	}
}

func TestPositiveDBStableEqualsMinimal(t *testing.T) {
	// Paper: if DB is positive, DSM(DB) = MM(DB).
	rng := rand.New(rand.NewSource(71))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(6)))
		want := refsem.MinimalModels(d)
		var got []logic.Interp
		s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		})
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: DSM ≠ MM on positive DB\nDB:\n%s", iter, d.String())
		}
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	s := New(core.Options{})
	for iter := 0; iter < 250; iter++ {
		d := gen.Random(rng, gen.Normal(2+rng.Intn(4), 1+rng.Intn(7)))
		want := refsem.DSM(d)
		var got []logic.Interp
		s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		})
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: DSM mismatch\nDB:\n%swant %d got %d",
				iter, d.String(), len(want), len(got))
		}
	}
}

func TestStableModelsAreMinimalModels(t *testing.T) {
	// DSM(DB) ⊆ MM(DB) (paper, citing Przymusinski).
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.Normal(2+rng.Intn(4), 1+rng.Intn(6)))
		mm := refsem.MinimalModels(d)
		keys := map[string]bool{}
		for _, m := range mm {
			keys[m.Key()] = true
		}
		for _, m := range refsem.DSM(d) {
			if !keys[m.Key()] {
				t.Fatalf("iter %d: stable model not minimal\nDB:\n%s", iter, d.String())
			}
		}
	}
}

func TestInferenceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.Normal(n, 1+rng.Intn(6)))
		set := refsem.DSM(d)
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(set, f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: InferFormula=%v want %v\nDB:\n%sF: %s",
				iter, got, want, d.String(), f.String(d.Voc))
		}
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(set, logic.LitF(l))
			got, _ := s.InferLiteral(d, l)
			if got != want {
				t.Fatalf("iter %d: lit %s got %v want %v\nDB:\n%s",
					iter, d.Voc.LitString(l), got, want, d.String())
			}
		}
	}
}

func TestHasModelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	s := New(core.Options{})
	haveEmpty, haveNonEmpty := 0, 0
	for iter := 0; iter < 200; iter++ {
		d := gen.Random(rng, gen.Normal(2+rng.Intn(4), 1+rng.Intn(6)))
		want := len(refsem.DSM(d)) > 0
		got, err := s.HasModel(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: HasModel=%v want %v\nDB:\n%s", iter, got, want, d.String())
		}
		if want {
			haveNonEmpty++
		} else {
			haveEmpty++
		}
	}
	if haveEmpty == 0 || haveNonEmpty == 0 {
		t.Fatalf("degenerate corpus: empty=%d nonEmpty=%d", haveEmpty, haveNonEmpty)
	}
}

func TestIsStable(t *testing.T) {
	s := New(core.Options{})
	d := dbtest.MustParse("a :- not b. b :- not a.")
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")
	if !s.IsStable(d, logic.InterpOf(2, a)) {
		t.Fatalf("{a} should be stable")
	}
	if s.IsStable(d, logic.InterpOf(2, a, b)) {
		t.Fatalf("{a,b} should not be stable")
	}
	if s.IsStable(d, logic.InterpOf(2)) {
		t.Fatalf("{} should not be stable (not a model of the reduct)")
	}
}

func TestColoringStableModels(t *testing.T) {
	// Proper 3-colourings of C5 = stable models of the colouring DB.
	g := gen.Cycle(5)
	d := gen.ColoringDB(g, 3)
	s := New(core.Options{})
	count, _ := s.Models(d, 0, func(logic.Interp) bool { return true })
	// Number of proper 3-colourings of C_n is (k-1)^n + (-1)^n (k-1)
	// with k=3, n=5: 2^5 - 2 = 30.
	if count != 30 {
		t.Fatalf("C5 3-colourings = %d, want 30", count)
	}
	// C5 with 2 colours: none.
	d2 := gen.ColoringDB(g, 2)
	if ok, _ := s.HasModel(d2); ok {
		t.Fatalf("odd cycle is not 2-colourable")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
