package dsm

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
)

func TestModelsParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for iter := 0; iter < 30; iter++ {
		d := gen.Random(rng, gen.Normal(3+rng.Intn(4), 1+rng.Intn(8)))
		s := New(core.Options{})
		want := map[string]bool{}
		s.Models(d, 0, func(m logic.Interp) bool {
			want[m.Key()] = true
			return true
		})
		for _, w := range []int{1, 4, 0} {
			got := map[string]bool{}
			s.ModelsPar(d, 0, func(m logic.Interp) bool {
				got[m.Key()] = true
				return true
			}, models.ParOptions{Workers: w})
			if len(got) != len(want) {
				t.Fatalf("iter %d workers=%d: %d stable models, serial %d\nDB:\n%s",
					iter, w, len(got), len(want), d.String())
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("iter %d workers=%d: stable model %q missing", iter, w, k)
				}
			}
		}
	}
}
