package cwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

// refCWA computes CWA(DB) from the definition: models of DB plus ¬x
// for every atom not true in all models.
func refCWA(d *db.DB) []logic.Interp {
	all := refsem.Models(d)
	n := d.N()
	entailed := make([]bool, n)
	for v := 0; v < n; v++ {
		entailed[v] = len(all) > 0
		for _, m := range all {
			if !m.Holds(logic.Atom(v)) {
				entailed[v] = false
				break
			}
		}
	}
	var out []logic.Interp
	for _, m := range all {
		ok := true
		for v := 0; v < n; v++ {
			if m.Holds(logic.Atom(v)) && !entailed[v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	return out
}

func TestRegistered(t *testing.T) {
	if _, ok := core.New("CWA", core.Options{}); !ok {
		t.Fatalf("CWA not registered")
	}
}

func TestDisjunctionInconsistent(t *testing.T) {
	// The paper's point: CWA(a ∨ b) adds both ¬a and ¬b and becomes
	// inconsistent.
	d := dbtest.MustParse("a | b.")
	s := New(core.Options{})
	ok, err := s.HasModel(d)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("CWA(a∨b) must be inconsistent")
	}
}

func TestHornUnique(t *testing.T) {
	d := dbtest.MustParse("a. b :- a. d :- e.")
	s := New(core.Options{})
	ok, _ := s.HasModel(d)
	if !ok {
		t.Fatalf("CWA of a Horn DB must be consistent")
	}
	count, _ := s.Models(d, 0, func(m logic.Interp) bool {
		if got := m.String(d.Voc); got != "{a, b}" {
			t.Fatalf("CWA model = %s, want {a, b}", got)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("CWA must have exactly one model, got %d", count)
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	s := New(core.Options{})
	for iter := 0; iter < 250; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
		want := refCWA(d)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: CWA model set mismatch\nDB:\n%swant %d got %d",
				iter, d.String(), len(want), len(got))
		}
		if len(want) > 1 {
			t.Fatalf("iter %d: CWA produced %d models; must be ≤ 1", iter, len(want))
		}
	}
}

func TestHasModelLogCallsAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	consistent, inconsistent := 0, 0
	for iter := 0; iter < 300; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(5), 1+rng.Intn(8)))
		s := New(core.Options{})
		want, _ := s.HasModel(d)
		got, err := s.HasModelLogCalls(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: log-calls=%v direct=%v\nDB:\n%s", iter, got, want, d.String())
		}
		if want {
			consistent++
		} else {
			inconsistent++
		}
	}
	if consistent == 0 || inconsistent == 0 {
		t.Fatalf("degenerate corpus: consistent=%d inconsistent=%d", consistent, inconsistent)
	}
}

func TestHasModelLogCallsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	for _, n := range []int{6, 10, 14} {
		d := gen.Random(rng, gen.WithIntegrity(n, 2*n))
		s := New(core.Options{})
		if _, err := s.HasModelLogCalls(d); err != nil {
			t.Fatal(err)
		}
		calls := s.Oracle().Counters().NPCalls
		budget := int64(ceilLog2(n+1) + 3)
		if calls > budget {
			t.Fatalf("n=%d: %d NP calls, budget %d", n, calls, budget)
		}
	}
}

func ceilLog2(x int) int {
	c, v := 0, 1
	for v < x {
		v *= 2
		c++
	}
	return c
}

func TestInference(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		set := refCWA(d)
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(set, logic.LitF(l))
			got, err := s.InferLiteral(d, l)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("iter %d: InferLiteral(%s)=%v want %v\nDB:\n%s",
					iter, d.Voc.LitString(l), got, want, d.String())
			}
		}
	}
}
