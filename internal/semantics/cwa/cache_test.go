package cwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/semtest"
)

// TestCachedOracleCrossCheck: CWA with the oracle verdict cache must
// match CWA without it — verdicts, model sets, NP-call totals. CWA
// mixes one-shot Sat queries (closure consistency, per-literal tests)
// with an incremental enumeration solver, so both cache paths and the
// bypass-as-miss accounting are exercised.
func TestCachedOracleCrossCheck(t *testing.T) {
	semtest.CrossCheckCached(t, "CWA", 30, func(iter int, rng *rand.Rand) *db.DB {
		switch iter % 3 {
		case 0:
			return gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(7)))
		case 1:
			return gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
		default:
			return gen.Random(rng, gen.NormalNoIC(2+rng.Intn(4), 1+rng.Intn(7)))
		}
	})
}
