// Package cwa implements Reiter's original Closed World Assumption,
// which the paper discusses in §3.1 as the baseline the disjunctive
// semantics repair: CWA(DB) adds ¬x for every atom x not classically
// entailed by DB. On a disjunctive database the result is often
// inconsistent (from a ∨ b neither a nor b is entailed, so both ¬a and
// ¬b are added) — "this is not suitable for disjunctive databases
// since it enforces a unique model of the DB if the result is
// consistent".
//
// The paper's aside on its complexity is implemented too: deciding
// whether CWA(DB) is nonempty is coNP-hard and in P^NP[O(log n)]
// (Eiter–Gottlob [7]); HasModelLogCalls realises the upper bound with
// a binary search making O(log n) NP-oracle calls, mirroring — one
// level down the hierarchy — the Δ-log algorithm used for GCWA/CCWA
// formula inference.
package cwa

import (
	"fmt"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/par"
)

func init() {
	core.Register("CWA", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "CWA",
		Complexity: "literal/formula coNP; existence coNP-hard, in P^NP[O(log n)]",
		Cells:      core.Cells{Literal: core.CellCoNP, Formula: core.CellCoNP, Existence: core.CellCoNP},
	})
}

// Sem is Reiter's CWA.
type Sem struct {
	opts core.Options
}

// New returns a CWA instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts}
}

// Name returns "CWA".
func (s *Sem) Name() string { return "CWA" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

// NegatedAtoms returns {x : DB ⊭ x}, the atoms CWA closes off.
// One NP call per atom.
func (s *Sem) NegatedAtoms(d *db.DB) []logic.Atom {
	cnf := d.ToCNF()
	n := d.N()
	var out []logic.Atom
	for v := 0; v < n; v++ {
		query := logic.CloneCNF(cnf)
		query = append(query, logic.Clause{logic.NegLit(logic.Atom(v))})
		if sat, _ := s.opts.Oracle.Sat(n, query); sat {
			out = append(out, logic.Atom(v)) // a model without x exists
		}
	}
	return out
}

// NegatedAtomsPar is NegatedAtoms with the per-atom NP calls spread
// over a worker pool. The queries are independent, so the oracle-call
// total matches the serial method for any worker count, and the atoms
// come back in ascending order.
func (s *Sem) NegatedAtomsPar(d *db.DB, opt models.ParOptions) []logic.Atom {
	cnf := d.ToCNF()
	n := d.N()
	open := par.MapBool(opt.Workers, n, func(v int) bool {
		query := logic.CloneCNF(cnf)
		query = append(query, logic.Clause{logic.NegLit(logic.Atom(v))})
		sat, _ := s.opts.Oracle.Sat(n, query)
		return sat // a model without v exists: v is not entailed
	})
	var out []logic.Atom
	for v, o := range open {
		if o {
			out = append(out, logic.Atom(v))
		}
	}
	return out
}

func (s *Sem) closureCNF(d *db.DB) logic.CNF {
	cnf := d.ToCNF()
	for _, a := range s.NegatedAtoms(d) {
		cnf = append(cnf, logic.Clause{logic.NegLit(a)})
	}
	return cnf
}

// HasModel decides CWA(DB) ≠ ∅ by computing the closure: n+1 NP calls.
// See HasModelLogCalls for the O(log n)-call upper bound.
func (s *Sem) HasModel(d *db.DB) (ok bool, err error) {
	defer budget.Recover(&err)
	sat, _ := s.opts.Oracle.Sat(d.N(), s.closureCNF(d))
	return sat, nil
}

// HasModelLogCalls decides CWA(DB) ≠ ∅ with O(log n) NP-oracle calls
// (the P^NP[O(log n)] upper bound the paper cites from [7]).
//
// Key observation: CWA(DB) is nonempty iff DB has a model M with
// M ⊆ E, where E = {x : DB ⊨ x} is the set of entailed atoms — and
// such a model must equal E exactly (it contains E by entailment).
// Equivalently: CWA(DB) ≠ ∅ iff DB ∧ "at most k atoms true" is
// satisfiable for k = |E| and every satisfying model of minimum
// cardinality consists of entailed atoms only. The algorithm:
//
//  1. binary-search kmin = the minimum number of true atoms over
//     models of DB (O(log n) NP calls on DB ∧ AtMost(k));
//  2. one final NP call asks for a model M with |M| = kmin together
//     with a second model N and an atom x ∈ M ∖ N (witnessing
//     non-entailment of some atom of M): if none exists, every
//     minimum-cardinality model consists of entailed atoms — but all
//     entailed atoms lie in every model, so M = E and M ⊨ CWA(DB).
//
// Correctness: CWA(DB) ≠ ∅ ⟺ E is a model of DB. If E is a model it
// has minimum cardinality (every model contains E) and no atom of E
// can be missing from another model. Conversely if some minimum
// model M contains a non-entailed atom x (witnessed by N ∌ x), then
// E ⊊ M strictly; E being a model would contradict M's minimality if
// E were a model — and if E is not a model, CWA(DB) = ∅.
func (s *Sem) HasModelLogCalls(d *db.DB) (ok bool, err error) {
	defer budget.Recover(&err)
	n := d.N()
	base := d.ToCNF()
	if sat, _ := s.opts.Oracle.Sat(n, base); !sat {
		return false, nil
	}
	atMostK := func(k int) (logic.CNF, int) {
		voc := d.Voc.Clone()
		lits := make([]logic.Lit, n)
		for v := 0; v < n; v++ {
			lits[v] = logic.PosLit(logic.Atom(v))
		}
		query := logic.CloneCNF(base)
		query = append(query, logic.AtMostK(lits, k, voc)...)
		return query, voc.Size()
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		q, size := atMostK(mid)
		if sat, _ := s.opts.Oracle.Sat(size, q); sat {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	kmin := lo

	// Final query: two model copies M, N of DB, |M| ≤ kmin, and some
	// atom true in M but false in N. Satisfiable ⟺ some minimum-
	// cardinality model contains a non-entailed atom ⟺ CWA(DB) = ∅.
	voc := logic.NewVocabulary()
	for v := 0; v < n; v++ {
		voc.Intern("m$" + d.Voc.Name(logic.Atom(v)))
	}
	for v := 0; v < n; v++ {
		voc.Intern("n$" + d.Voc.Name(logic.Atom(v)))
	}
	diff := make([]logic.Atom, n)
	for v := 0; v < n; v++ {
		diff[v] = voc.Intern(fmt.Sprintf("d$%d", v))
	}
	shift := func(offset int) logic.CNF {
		out := make(logic.CNF, len(base))
		for i, cl := range base {
			ncl := make(logic.Clause, len(cl))
			for j, l := range cl {
				ncl[j] = logic.MkLit(logic.Atom(int(l.Atom())+offset), l.IsPos())
			}
			out[i] = ncl
		}
		return out
	}
	var query logic.CNF
	query = append(query, shift(0)...) // M copy at atoms 0..n-1
	query = append(query, shift(n)...) // N copy at atoms n..2n-1
	mlits := make([]logic.Lit, n)
	var anyDiff logic.Clause
	for v := 0; v < n; v++ {
		mlits[v] = logic.PosLit(logic.Atom(v))
		// d_v → M_v ∧ ¬N_v
		query = append(query,
			logic.Clause{logic.NegLit(diff[v]), logic.PosLit(logic.Atom(v))},
			logic.Clause{logic.NegLit(diff[v]), logic.NegLit(logic.Atom(n + v))},
		)
		anyDiff = append(anyDiff, logic.PosLit(diff[v]))
	}
	query = append(query, anyDiff)
	query = append(query, logic.AtMostK(mlits, kmin, voc)...)
	sat, _ := s.opts.Oracle.Sat(voc.Size(), query)
	return !sat, nil
}

// InferLiteral decides CWA(DB) ⊨ l: classical entailment from the
// closure (vacuously true when the closure is inconsistent, matching
// the convention of the other semantics).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.InferFormula(d, logic.LitF(l))
}

// InferFormula decides CWA(DB) ⊨ f.
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (ok bool, err error) {
	defer budget.Recover(&err)
	return s.opts.Oracle.Entails(d.N(), s.closureCNF(d), f, d.Voc), nil
}

// Models enumerates CWA(DB). The closure has at most one model (the
// paper: CWA "enforces a unique model of the DB if the result is
// consistent"): every atom is either entailed — true in all models —
// or negated by the closure.
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	n := d.N()
	solver := s.opts.Oracle.SatSolver(n, s.closureCNF(d))
	solver.EnumerateModels(n, limit, func(model []bool) bool {
		s.opts.Oracle.CountCall()
		m := logic.NewInterp(n)
		for v := 0; v < n; v++ {
			m.True.SetTo(v, model[v])
		}
		count++
		return yield(m)
	})
	oracle.CheckEnumerate(solver)
	return count, nil
}

// CheckModel reports whether m ∈ CWA(DB): m models DB and every atom
// of m is classically entailed (one NP call per true atom).
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (ok bool, err error) {
	defer budget.Recover(&err)
	if !d.Sat(m) {
		return false, nil
	}
	cnf := d.ToCNF()
	n := d.N()
	for v := 0; v < n; v++ {
		if !m.Holds(logic.Atom(v)) {
			continue
		}
		query := logic.CloneCNF(cnf)
		query = append(query, logic.Clause{logic.NegLit(logic.Atom(v))})
		if sat, _ := s.opts.Oracle.Sat(n, query); sat {
			return false, nil // v is not entailed, yet true in m
		}
	}
	return true, nil
}
