package cwa

import (
	"math/rand"
	"reflect"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/gen"
	"disjunct/internal/models"
)

func TestNegatedAtomsParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for iter := 0; iter < 30; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(4+rng.Intn(6), 2+rng.Intn(12)))
		ser := New(core.Options{})
		want := ser.NegatedAtoms(d)
		wantC := ser.Oracle().Counters()
		for _, w := range []int{1, 4, 0} {
			s := New(core.Options{})
			got := s.NegatedAtomsPar(d, models.ParOptions{Workers: w})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d workers=%d: par %v, serial %v\nDB:\n%s", iter, w, got, want, d.String())
			}
			if c := s.Oracle().Counters(); c != wantC {
				t.Fatalf("iter %d workers=%d: counters %+v, serial %+v", iter, w, c, wantC)
			}
		}
	}
}
