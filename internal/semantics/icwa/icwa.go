// Package icwa implements the Iterated Closed World Assumption of
// Gelfond, Przymusinska, and Przymusinski (§4 of the paper): ECWA
// applied iteratively along a stratification ⟨S1,…,Sr⟩ of a DSDB.
// Negative body literals are first moved into the heads (the paper's
// device: "moving each ¬x in the body to the head"), yielding a
// positive database DB′; with Pᵢ = P ∩ Sᵢ the paper's characterisation
// (citing [12, Section 6]) is the intersection of ECWAs
//
//	ICWA_{P1>…>Pr;Z}(DB) = ⋂ᵢ ECWA_{Pᵢ; Pᵢ₊₁∪…∪Pᵣ∪Z}(DB′)
//
// i.e. the prioritised-circumscription models: M ∈ ICWA iff M ⊨ DB′
// and M is (Pᵢ;Zᵢ)-minimal for every stratum i (fixing the strata
// below). Membership of a candidate costs r NP-oracle calls.
//
// Complexity shape: literal and formula inference Π₂ᵖ-complete (given
// the stratification — Theorems 4.1, 4.2, the hardness holding even
// for positive databases); model existence O(1): "Stratifiability
// asserts consistency; if DB is stratified by S, then ICWA is
// consistent for any ⟨P;Q;Z⟩".
//
// Following the paper's DSDB class, integrity clauses are not
// supported (ErrUnsupported); non-stratifiable databases yield
// ErrNotStratifiable.
package icwa

import (
	"disjunct/internal/bitset"
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/strat"
)

func init() {
	core.Register("ICWA", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "ICWA",
		Complexity: "literal/formula Πᵖ₂-complete (given stratification); existence O(1)",
		Cells:      core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellP},
		NoIC:       true,
		Stratified: true,
	})
}

// Sem is the ICWA semantics.
type Sem struct {
	opts core.Options
}

// New returns an ICWA instance. The configured partition's P and Z
// play their usual roles; the stratification is computed from the
// database.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts}
}

// Name returns "ICWA".
func (s *Sem) Name() string { return "ICWA" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

// prep validates d, head-shifts it, and builds the per-stratum
// partitions.
func (s *Sem) prep(d *db.DB) (*db.DB, []models.Partition, error) {
	if d.HasIntegrityClauses() {
		return nil, nil, core.ErrUnsupported
	}
	st, ok := strat.Compute(d)
	if !ok {
		return nil, nil, core.ErrNotStratifiable
	}
	shifted := d.HeadShift()
	base := s.opts.PartitionFor(d)
	n := d.N()

	parts := make([]models.Partition, 0, st.R)
	for i := 0; i < st.R; i++ {
		pi := bitset.New(n)
		zi := base.Z.Clone()
		qi := base.Q.Clone()
		for v := 0; v < n; v++ {
			if !base.P.Test(v) {
				continue
			}
			switch {
			case st.Level[v] == i:
				pi.Set(v)
			case st.Level[v] > i:
				zi.Set(v)
			default:
				qi.Set(v)
			}
		}
		if pi.IsEmpty() {
			continue // stratum contributes no minimised atoms
		}
		parts = append(parts, models.Partition{P: pi, Q: qi, Z: zi})
	}
	return shifted, parts, nil
}

// IsICWAModel reports whether m ∈ ICWA(DB): m models the head-shifted
// database and is (Pᵢ;Zᵢ)-minimal at every stratum (r NP calls).
func (s *Sem) IsICWAModel(d *db.DB, m logic.Interp) (ok bool, err error) {
	defer budget.Recover(&err)
	shifted, parts, err := s.prep(d)
	if err != nil {
		return false, err
	}
	if !shifted.Sat(m) {
		return false, nil
	}
	eng := models.NewEngine(shifted, s.opts.Oracle)
	for _, p := range parts {
		if !eng.IsMinimalPZ(m, p) {
			return false, nil
		}
	}
	return true, nil
}

// pMinimize lexicographically minimises m stratum by stratum,
// producing a prioritised-minimal (i.e. ICWA) model ≤ m in the
// prioritised order.
func pMinimize(eng *models.Engine, parts []models.Partition, m logic.Interp) logic.Interp {
	cur := m
	for _, p := range parts {
		cur = eng.MinimizePZ(cur, p)
	}
	return cur
}

// HasModel decides ICWA(DB) ≠ ∅: constantly true for stratifiable
// databases ("stratifiability asserts consistency") — the O(1) cell.
func (s *Sem) HasModel(d *db.DB) (bool, error) {
	if _, _, err := s.prep(d); err != nil {
		return false, err
	}
	return true, nil
}

// InferFormula decides ICWA(DB) ⊨ f by counterexample search: find a
// model of DB′ ∧ ¬f, verify prioritised minimality (r NP calls); on
// failure, block the candidate and the superset cone of its
// prioritised minimisation, and continue.
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (ok bool, err error) {
	defer budget.Recover(&err)
	shifted, parts, err := s.prep(d)
	if err != nil {
		return false, err
	}
	eng := models.NewEngine(shifted, s.opts.Oracle)
	base := s.opts.PartitionFor(d)
	n := d.N()
	voc := d.Voc.Clone()
	query := logic.CloneCNF(eng.CNF())
	query = append(query, logic.TseitinNeg(f, voc)...)

	for {
		sat, m := s.opts.Oracle.Sat(voc.Size(), query)
		if !sat {
			return true, nil
		}
		mv := logic.NewInterp(n)
		for v := 0; v < n; v++ {
			mv.True.SetTo(v, m.Holds(logic.Atom(v)))
		}
		min := pMinimize(eng, parts, mv)
		if !f.Eval(min) {
			return false, nil
		}
		// min is an ICWA model satisfying f, but Z-variants of min
		// (same P and Q parts) are ICWA models too and may violate f.
		if !base.Z.IsEmpty() {
			zq := logic.CloneCNF(query)
			for v := 0; v < n; v++ {
				if base.Z.Test(v) {
					continue
				}
				a := logic.Atom(v)
				if min.Holds(a) {
					zq = append(zq, logic.Clause{logic.PosLit(a)})
				} else {
					zq = append(zq, logic.Clause{logic.NegLit(a)})
				}
			}
			if zsat, _ := s.opts.Oracle.Sat(voc.Size(), zq); zsat {
				return false, nil
			}
		}
		// Block the superset cone of min (on P∪Q): any N ⊋ min there
		// is prioritised-non-minimal; Z-variants were just cleared.
		var cone logic.Clause
		for v := 0; v < n; v++ {
			a := logic.Atom(v)
			switch {
			case base.P.Test(v):
				if min.Holds(a) {
					cone = append(cone, logic.NegLit(a))
				}
			case base.Q.Test(v):
				if min.Holds(a) {
					cone = append(cone, logic.NegLit(a))
				} else {
					cone = append(cone, logic.PosLit(a))
				}
			}
		}
		if len(cone) == 0 {
			return true, nil
		}
		query = append(query, cone)
		// Also block the candidate itself (it need not lie in the
		// cone: prioritised order is not pointwise ⊇), guaranteeing
		// progress.
		var exact logic.Clause
		for v := 0; v < n; v++ {
			a := logic.Atom(v)
			if mv.Holds(a) {
				exact = append(exact, logic.NegLit(a))
			} else {
				exact = append(exact, logic.PosLit(a))
			}
		}
		query = append(query, exact)
	}
}

// InferLiteral decides ICWA(DB) ⊨ l (Π₂ᵖ-complete given S —
// Theorem 4.2, even for positive databases).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.InferFormula(d, logic.LitF(l))
}

// Models enumerates ICWA(DB) by filtering all models of the
// head-shifted database through the per-stratum minimality checks.
// Exponential; intended for small databases.
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	shifted, parts, err := s.prep(d)
	if err != nil {
		return 0, err
	}
	eng := models.NewEngine(shifted, s.opts.Oracle)
	eng.EnumerateModels(0, func(m logic.Interp) bool {
		for _, p := range parts {
			if !eng.IsMinimalPZ(m, p) {
				return true
			}
		}
		count++
		if !yield(m) {
			return false
		}
		return limit <= 0 || count < limit
	})
	return count, nil
}

// CheckModel reports whether m ∈ ICWA(DB) (r NP-oracle calls, one per
// stratum).
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (bool, error) {
	return s.IsICWAModel(d, m)
}
