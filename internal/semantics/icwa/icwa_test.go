package icwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/refsem"
	"disjunct/internal/strat"
)

func TestRegistered(t *testing.T) {
	if _, ok := core.New("ICWA", core.Options{}); !ok {
		t.Fatalf("ICWA not registered")
	}
}

func TestStratifiedBasics(t *testing.T) {
	// {b; a ← ¬b}: strata put b below a; ICWA model: {b} (a closed off).
	d := dbtest.MustParse("b. a :- not b.")
	s := New(core.Options{})
	var got []string
	if _, err := s.Models(d, 0, func(m logic.Interp) bool {
		got = append(got, m.String(d.Voc))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "{b}" {
		t.Fatalf("ICWA models = %v, want [{b}]", got)
	}
	b, _ := d.Voc.Lookup("b")
	a, _ := d.Voc.Lookup("a")
	if ok, _ := s.InferLiteral(d, logic.PosLit(b)); !ok {
		t.Fatalf("ICWA must infer b")
	}
	if ok, _ := s.InferLiteral(d, logic.NegLit(a)); !ok {
		t.Fatalf("ICWA must infer ¬a")
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	s := New(core.Options{})
	for iter := 0; iter < 250; iter++ {
		d := gen.RandomStratified(rng, 2+rng.Intn(4), 1+rng.Intn(7), 1+rng.Intn(3))
		want, ok := refsem.ICWA(d)
		if !ok {
			t.Fatalf("iter %d: generator must produce stratified DBs", iter)
		}
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: ICWA model set mismatch\nDB:\n%swant %d got %d",
				iter, d.String(), len(want), len(got))
		}
	}
}

func TestInferenceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	s := New(core.Options{})
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.RandomStratified(rng, n, 1+rng.Intn(6), 1+rng.Intn(3))
		set, ok := refsem.ICWA(d)
		if !ok {
			continue
		}
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(set, f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: InferFormula=%v want %v\nDB:\n%sF: %s",
				iter, got, want, d.String(), f.String(d.Voc))
		}
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(set, logic.LitF(l))
			got, _ := s.InferLiteral(d, l)
			if got != want {
				t.Fatalf("iter %d: lit %s got %v want %v\nDB:\n%s",
					iter, d.Voc.LitString(l), got, want, d.String())
			}
		}
	}
}

func TestPositiveDBICWAEqualsGCWAModels(t *testing.T) {
	// A positive DB has the one-stratum stratification ⟨V⟩, and the
	// intersection characterisation collapses to ECWA = MM... i.e.
	// ICWA models = MM(DB) on positive databases.
	rng := rand.New(rand.NewSource(93))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(6)))
		want := refsem.MinimalModels(d)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: ICWA ≠ MM on positive DB\nDB:\n%s", iter, d.String())
		}
	}
}

func TestHasModelO1(t *testing.T) {
	s := New(core.Options{})
	d := gen.RandomStratified(rand.New(rand.NewSource(94)), 6, 10, 3)
	before := s.Oracle().Counters().NPCalls
	ok, err := s.HasModel(d)
	if err != nil || !ok {
		t.Fatalf("stratified DB must have an ICWA model: %v %v", ok, err)
	}
	// The O(1) cell: no oracle calls for model existence.
	if after := s.Oracle().Counters().NPCalls; after != before {
		t.Fatalf("ICWA model existence consumed %d oracle calls, want 0", after-before)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	d := dbtest.MustParse("a :- not b. b :- not a.")
	s := New(core.Options{})
	if _, err := s.HasModel(d); err != core.ErrNotStratifiable {
		t.Fatalf("want ErrNotStratifiable, got %v", err)
	}
}

func TestIntegrityClausesUnsupported(t *testing.T) {
	d := dbtest.MustParse("a. :- a, b.")
	s := New(core.Options{})
	if _, err := s.HasModel(d); err != core.ErrUnsupported {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestIsICWAModel(t *testing.T) {
	d := dbtest.MustParse("b. a :- not b.")
	s := New(core.Options{})
	b, _ := d.Voc.Lookup("b")
	a, _ := d.Voc.Lookup("a")
	ok, err := s.IsICWAModel(d, logic.InterpOf(2, b))
	if err != nil || !ok {
		t.Fatalf("{b} should be an ICWA model: %v %v", ok, err)
	}
	ok, _ = s.IsICWAModel(d, logic.InterpOf(2, a, b))
	if ok {
		t.Fatalf("{a,b} should not be an ICWA model")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}

// refICWAPartition computes ICWA models for an explicit ⟨P;Q;Z⟩
// partition from the definition: models of the head-shifted DB minimal
// in the prioritised order over P∩Sᵢ (Q fixed, Z free).
func refICWAPartition(t *testing.T, d *db.DB, p, q map[int]bool) []logic.Interp {
	t.Helper()
	st, ok := strat.Compute(d)
	if !ok {
		t.Fatalf("not stratifiable")
	}
	shifted := d.HeadShift()
	all := refsem.Models(shifted)
	n := d.N()
	less := func(a, b logic.Interp) bool {
		// a <p b: equal on Q; at the first stratum where the P-parts
		// differ, a's is a proper subset of b's (Z unconstrained).
		for v := 0; v < n; v++ {
			if q[v] && a.Holds(logic.Atom(v)) != b.Holds(logic.Atom(v)) {
				return false
			}
		}
		for i := 0; i < st.R; i++ {
			sub, equal := true, true
			for v := 0; v < n; v++ {
				if !p[v] || st.Level[v] != i {
					continue
				}
				av, bv := a.Holds(logic.Atom(v)), b.Holds(logic.Atom(v))
				if av != bv {
					equal = false
				}
				if av && !bv {
					sub = false
				}
			}
			if !equal {
				return sub
			}
		}
		return false
	}
	var out []logic.Interp
	for _, m := range all {
		minimal := true
		for _, o := range all {
			if less(o, m) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, m)
		}
	}
	return out
}

func TestICWAWithExplicitPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(3)
		d := gen.RandomStratified(rng, n, 1+rng.Intn(5), 1+rng.Intn(2))
		p, q := map[int]bool{}, map[int]bool{}
		var ps, zs []logic.Atom
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				p[v] = true
				ps = append(ps, logic.Atom(v))
			case 1:
				q[v] = true
			default:
				zs = append(zs, logic.Atom(v))
			}
		}
		part := models.NewPartition(n, ps, zs)
		s := New(core.Options{Partition: &part})
		want := refICWAPartition(t, d, p, q)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: partitioned ICWA mismatch (want %d got %d)\nP=%v Q=%v\n%s",
				iter, len(want), len(got), p, q, d.String())
		}
	}
}
