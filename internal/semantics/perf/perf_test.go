package perf

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
	"disjunct/internal/strat"
)

func TestRegistered(t *testing.T) {
	if _, ok := core.New("PERF", core.Options{}); !ok {
		t.Fatalf("PERF not registered")
	}
}

func TestStratifiedExample(t *testing.T) {
	// DB = {a ← ¬b}: priority a < b; unique perfect model {a}.
	d := dbtest.MustParse("a :- not b.")
	s := New(core.Options{})
	var got []string
	if _, err := s.Models(d, 0, func(m logic.Interp) bool {
		got = append(got, m.String(d.Voc))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "{a}" {
		t.Fatalf("perfect models of {a←¬b} = %v, want [{a}]", got)
	}
}

func TestPositiveDBPerfectEqualsMinimal(t *testing.T) {
	// Without negation the priority relation has no strict pairs, so
	// preferability degenerates to ⊊ and PERF = MM.
	rng := rand.New(rand.NewSource(81))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(6)))
		want := refsem.MinimalModels(d)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: PERF ≠ MM on positive DB\nDB:\n%s", iter, d.String())
		}
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	s := New(core.Options{})
	for iter := 0; iter < 250; iter++ {
		d := gen.Random(rng, gen.NormalNoIC(2+rng.Intn(4), 1+rng.Intn(7)))
		want := refsem.PERF(d)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: PERF mismatch\nDB:\n%swant %d got %d",
				iter, d.String(), len(want), len(got))
		}
	}
}

func TestStratifiedPerfectEqualsICWAModels(t *testing.T) {
	// On stratified databases the perfect models coincide with the
	// iterated (prioritised) minimal models — the paper introduces
	// ICWA exactly "for capturing PERF under stratified negation".
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 150; iter++ {
		d := gen.RandomStratified(rng, 2+rng.Intn(4), 1+rng.Intn(6), 2)
		icwa, ok := refsem.ICWA(d)
		if !ok {
			t.Fatalf("iter %d: generated DB should be stratified", iter)
		}
		perf := refsem.PERF(d)
		if !refsem.SameModelSet(icwa, perf) {
			t.Fatalf("iter %d: PERF ≠ ICWA on stratified DB\n%s", iter, d.String())
		}
	}
}

func TestInferenceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.NormalNoIC(n, 1+rng.Intn(6)))
		set := refsem.PERF(d)
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(set, f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: InferFormula=%v want %v\nDB:\n%sF: %s",
				iter, got, want, d.String(), f.String(d.Voc))
		}
	}
}

func TestHasModelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	s := New(core.Options{})
	for iter := 0; iter < 200; iter++ {
		d := gen.Random(rng, gen.NormalNoIC(2+rng.Intn(4), 1+rng.Intn(6)))
		want := len(refsem.PERF(d)) > 0
		got, err := s.HasModel(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: HasModel=%v want %v\nDB:\n%s", iter, got, want, d.String())
		}
	}
}

func TestIntegrityClausesUnsupported(t *testing.T) {
	d := dbtest.MustParse("a. :- a, b.")
	s := New(core.Options{})
	if _, err := s.HasModel(d); err != core.ErrUnsupported {
		t.Fatalf("PERF with integrity clauses should be unsupported, got %v", err)
	}
}

func TestIsPerfectAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.NormalNoIC(2+rng.Intn(4), 1+rng.Intn(6)))
		pri := strat.NewPriority(d)
		all := refsem.Models(d)
		for _, m := range all {
			want := true
			for _, n := range all {
				if refsem.Preferable(n, m, pri) {
					want = false
					break
				}
			}
			if got := s.IsPerfect(d, m, pri); got != want {
				t.Fatalf("iter %d: IsPerfect(%s)=%v want %v\nDB:\n%s",
					iter, m.String(d.Voc), got, want, d.String())
			}
		}
	}
}

func TestPriorityRelation(t *testing.T) {
	// a ← b ∧ ¬c: a ≤ b, a < c.
	d := dbtest.MustParse("a :- b, not c.")
	pri := strat.NewPriority(d)
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")
	c, _ := d.Voc.Lookup("c")
	if !pri.Leq(int(a), int(b)) {
		t.Fatalf("want a ≤ b")
	}
	if !pri.Less(int(a), int(c)) {
		t.Fatalf("want a < c")
	}
	if pri.Less(int(c), int(a)) {
		t.Fatalf("c < a must not hold")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
