// Package perf implements Przymusinski's Perfect Model Semantics
// (§5.1 of the paper), defined for disjunctive normal databases
// without integrity clauses.
//
// The priority relation < on atoms is derived from the clause
// structure (package strat); a model N is *preferable* to a model M
// (N ≺ M) iff N ≠ M and for every atom a ∈ N∖M there is an atom
// b ∈ M∖N with a < b. M is perfect iff no model of DB is preferable
// to it. Preferability generalises ⊊ (if N ⊊ M the condition is
// vacuous), so perfect models are minimal models.
//
// Complexity shape: literal and formula inference Π₂ᵖ-complete; model
// existence Σ₂ᵖ-complete (Table 2; for positive databases PERF = MM
// and existence is trivial). The perfection check for a candidate M —
// "no model is preferable to M" — is a single NP-oracle call (the
// paper's proof device: "M is a perfect model of DB iff DB′ has no
// model").
package perf

import (
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/par"
	"disjunct/internal/strat"
)

func init() {
	core.Register("PERF", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "PERF",
		Complexity: "literal/formula Πᵖ₂-complete; existence Σᵖ₂-complete (O(1) positive)",
		Cells:      core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellSigma2},
		NoIC:       true,
	})
}

// Sem is the PERF semantics.
type Sem struct {
	opts core.Options
}

// New returns a PERF instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts}
}

// Name returns "PERF".
func (s *Sem) Name() string { return "PERF" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

func (s *Sem) check(d *db.DB) error {
	if d.HasIntegrityClauses() {
		return core.ErrUnsupported // PERF is defined without integrity clauses
	}
	return nil
}

// IsPerfect reports whether model m is perfect: no model of d is
// preferable to m. One NP-oracle call on DB′ = DB ∧ "N ≺ m".
//
// The preferability condition is encoded over the candidate N's
// variables: N is a model of DB, N ≠ m, and for every atom a ∉ m:
// N_a → ∨{¬N_b : b ∈ m, a < b} (if a enters, some higher-priority
// atom of m must leave).
func (s *Sem) IsPerfect(d *db.DB, m logic.Interp, pri *strat.Priority) bool {
	if pri == nil {
		pri = strat.NewPriority(d)
	}
	n := d.N()
	cnf := d.ToCNF()
	// N ≠ m.
	var diff logic.Clause
	for v := 0; v < n; v++ {
		if m.Holds(logic.Atom(v)) {
			diff = append(diff, logic.NegLit(logic.Atom(v)))
		} else {
			diff = append(diff, logic.PosLit(logic.Atom(v)))
		}
	}
	cnf = append(cnf, diff)
	// Preference implication for every atom outside m.
	for a := 0; a < n; a++ {
		if m.Holds(logic.Atom(a)) {
			continue
		}
		cl := logic.Clause{logic.NegLit(logic.Atom(a))}
		for b := 0; b < n; b++ {
			if m.Holds(logic.Atom(b)) && pri.Less(a, b) {
				cl = append(cl, logic.NegLit(logic.Atom(b)))
			}
		}
		cnf = append(cnf, cl)
	}
	sat, _ := s.opts.Oracle.Sat(n, cnf)
	return !sat
}

// Models enumerates PERF(DB). Perfect models are minimal, so the
// candidates are MM(DB), each checked with one NP call.
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	if err := s.check(d); err != nil {
		return 0, err
	}
	pri := strat.NewPriority(d)
	eng := models.NewEngine(d, s.opts.Oracle)
	eng.MinimalModels(0, func(m logic.Interp) bool {
		if !s.IsPerfect(d, m, pri) {
			return true
		}
		count++
		if !yield(m) {
			return false
		}
		return limit <= 0 || count < limit
	})
	return count, nil
}

// ModelsPar is Models in two parallel phases: the minimal-model
// candidates are enumerated with the region-decomposed worker pool,
// then the one-NP-call preferability checks run concurrently over the
// collected candidates. Both phases issue the same queries as the
// serial route (one perfection check per minimal model), so the
// oracle-call total is worker-count-invariant; with limit > 0 the
// candidate collection still runs to completion before filtering.
// Yield order is nondeterministic.
func (s *Sem) ModelsPar(d *db.DB, limit int, yield func(logic.Interp) bool, opt models.ParOptions) (count int, err error) {
	defer budget.Recover(&err)
	if err := s.check(d); err != nil {
		return 0, err
	}
	pri := strat.NewPriority(d)
	eng := models.NewEngine(d, s.opts.Oracle)
	var cands []logic.Interp
	eng.MinimalModelsPar(0, func(m logic.Interp) bool {
		cands = append(cands, m) // emitter serialises this callback
		return true
	}, opt)
	perfect := par.MapBool(opt.Workers, len(cands), func(i int) bool {
		return s.IsPerfect(d, cands[i], pri)
	})
	for i, ok := range perfect {
		if !ok {
			continue
		}
		count++
		if !yield(cands[i]) || (limit > 0 && count >= limit) {
			break
		}
	}
	return count, nil
}

// HasModel decides PERF(DB) ≠ ∅ — the Σ₂ᵖ-complete cell: search over
// minimal-model candidates with the one-NP-call perfection verifier.
func (s *Sem) HasModel(d *db.DB) (bool, error) {
	if err := s.check(d); err != nil {
		return false, err
	}
	if !d.HasNegation() {
		return true, nil // PERF = MM on positive DBs, and MM ≠ ∅ (O(1))
	}
	found := false
	_, err := s.Models(d, 1, func(logic.Interp) bool {
		found = true
		return false
	})
	return found, err
}

// InferLiteral decides PERF(DB) ⊨ l (Π₂ᵖ-complete).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.InferFormula(d, logic.LitF(l))
}

// InferFormula decides PERF(DB) ⊨ f: truth in every perfect model.
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (bool, error) {
	holds := true
	_, err := s.Models(d, 0, func(m logic.Interp) bool {
		if !f.Eval(m) {
			holds = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return holds, nil
}

// CheckModel reports whether m is a perfect model: one model
// evaluation plus one NP-oracle preferability call (the paper's
// "M is a perfect model of DB iff DB′ has no model").
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (ok bool, err error) {
	defer budget.Recover(&err)
	if err := s.check(d); err != nil {
		return false, err
	}
	if !d.Sat(m) {
		return false, nil
	}
	return s.IsPerfect(d, m, nil), nil
}
