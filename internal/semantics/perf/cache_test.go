package perf

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/semtest"
)

// TestCachedOracleCrossCheck: PERF with the oracle verdict cache must
// match PERF without it — verdicts, model sets, NP-call totals. PERF
// is only defined without integrity clauses, so the generator stays in
// that class.
func TestCachedOracleCrossCheck(t *testing.T) {
	semtest.CrossCheckCached(t, "PERF", 30, func(iter int, rng *rand.Rand) *db.DB {
		if iter%2 == 0 {
			return gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(7)))
		}
		return gen.Random(rng, gen.NormalNoIC(2+rng.Intn(4), 1+rng.Intn(7)))
	})
}
