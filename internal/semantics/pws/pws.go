// Package pws implements Chan's Possible Worlds Semantics (§3.2),
// equivalent to Sakama's Possible Models Semantics (PMS).
//
// A split program of DB chooses, for every non-integrity clause, a
// nonempty subset of its head atoms, yielding a definite program
// (heads of size one after splitting: each chosen atom gets the
// clause's body). A possible model of DB is the least model of some
// split program; integrity clauses filter the candidates. PWS
// inference is truth in every possible model.
//
// Complexity shape: negative-literal inference on positive DDBs
// without integrity clauses is polynomial (Chan; zero oracle calls:
// x is false in all possible models iff x is outside the all-heads
// least fixpoint); with integrity clauses literal inference is
// coNP-complete and formula inference coNP-complete in both regimes.
//
// The implementation enumerates split programs per clause-choice
// (exponential in the number of genuinely disjunctive clauses) for the
// general operations, with the polynomial fast path for the tractable
// cell. The possible-model count is also bounded by deduplication, so
// enumeration is feasible for the benchmark sizes; the coNP cells'
// scaling shows on the reduction families.
package pws

import (
	"disjunct/internal/bitset"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/fixpoint"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

func init() {
	core.Register("PWS", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Register("PMS", func(opts core.Options) core.Semantics {
		s := New(opts)
		s.name = "PMS"
		return s
	})
	pwsCell := "negative literal in P (no IC) / coNP with IC; formula coNP-complete; existence NP"
	pwsCells := core.Cells{Literal: core.CellCoNP, Formula: core.CellCoNP, Existence: core.CellNP}
	core.Describe(core.Info{Name: "PWS", Complexity: pwsCell, Cells: pwsCells, NoNegation: true})
	core.Describe(core.Info{Name: "PMS", Complexity: pwsCell, Cells: pwsCells, NoNegation: true})
}

// Sem is the PWS ≡ PMS semantics.
type Sem struct {
	opts core.Options
	name string
}

// New returns a PWS instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts, name: "PWS"}
}

// Name returns "PWS" (or "PMS").
func (s *Sem) Name() string { return s.name }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

func (s *Sem) check(d *db.DB) error {
	if d.HasNegation() {
		return core.ErrUnsupported
	}
	return nil
}

// PossibleModels enumerates the distinct possible models of d
// satisfying its integrity clauses. limit ≤ 0 means unlimited.
func (s *Sem) PossibleModels(d *db.DB, limit int, yield func(logic.Interp) bool) (int, error) {
	if err := s.check(d); err != nil {
		return 0, err
	}
	// Separate genuinely disjunctive clauses from definite ones and
	// integrity clauses.
	var definite []db.Clause
	var disjunctive []db.Clause
	var integrity []db.Clause
	for _, c := range d.Clauses {
		switch {
		case c.IsIntegrity():
			integrity = append(integrity, c)
		case len(c.Head) == 1:
			definite = append(definite, c)
		default:
			disjunctive = append(disjunctive, c)
		}
	}

	seen := make(map[string]bool)
	count := 0
	stopped := false

	// Enumerate nonempty head subsets per disjunctive clause.
	choice := make([]uint64, len(disjunctive))
	for i := range choice {
		choice[i] = 1 // nonempty subsets encoded as bitmask ≥ 1
	}
	split := db.NewWithVocab(d.Voc)
	for {
		// Build the split program: definite clauses + chosen heads.
		split.Clauses = split.Clauses[:0]
		split.Clauses = append(split.Clauses, definite...)
		for i, c := range disjunctive {
			mask := choice[i]
			for b := 0; b < len(c.Head); b++ {
				if mask&(1<<uint(b)) != 0 {
					split.Clauses = append(split.Clauses, db.Clause{
						Head:    []logic.Atom{c.Head[b]},
						PosBody: c.PosBody,
					})
				}
			}
		}
		m := fixpoint.LeastModel(split)
		key := m.Key()
		if !seen[key] {
			seen[key] = true
			if satisfiesIntegrity(m, integrity) {
				count++
				if !yield(m) || (limit > 0 && count >= limit) {
					stopped = true
				}
			}
		}
		if stopped {
			return count, nil
		}
		// Advance the choice vector (odometer over nonempty subsets).
		i := 0
		for ; i < len(disjunctive); i++ {
			choice[i]++
			if choice[i] < 1<<uint(len(disjunctive[i].Head)) {
				break
			}
			choice[i] = 1
		}
		if i == len(disjunctive) {
			return count, nil
		}
	}
}

func satisfiesIntegrity(m logic.Interp, integrity []db.Clause) bool {
	for _, c := range integrity {
		if !c.Sat(m) {
			return false
		}
	}
	return true
}

// InferLiteral decides PWS(DB) ⊨ l. Fast path (Chan's Table 1 cell):
// on a positive DDB without integrity clauses, ¬x is inferred iff x is
// outside the all-heads least fixpoint — polynomial, zero oracle calls
// (the fixpoint is the least model of the maximal split program, which
// is itself a possible model containing every possibly-true atom).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	if err := s.check(d); err != nil {
		return false, err
	}
	if !l.IsPos() && !d.HasIntegrityClauses() {
		return !fixpoint.PossiblyTrue(d).Test(int(l.Atom())), nil
	}
	return s.InferFormula(d, logic.LitF(l))
}

// PossiblyTrueAtoms returns the atoms true in at least one possible
// model (ignoring integrity clauses) — the polynomial closure.
func (s *Sem) PossiblyTrueAtoms(d *db.DB) *bitset.Set {
	return fixpoint.PossiblyTrue(d)
}

// InferFormula decides PWS(DB) ⊨ f: truth in every possible model,
// by enumeration (the coNP cells; each possible model costs one least-
// model fixpoint, and the enumeration is the exponential worst case a
// coNP-complete problem permits).
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (bool, error) {
	holds := true
	_, err := s.PossibleModels(d, 0, func(m logic.Interp) bool {
		if !f.Eval(m) {
			holds = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return holds, nil
}

// HasModel decides PWS(DB) ≠ ∅: some split program's least model
// satisfies the integrity clauses. Without integrity clauses this is
// constantly true.
func (s *Sem) HasModel(d *db.DB) (bool, error) {
	if err := s.check(d); err != nil {
		return false, err
	}
	if !d.HasIntegrityClauses() {
		return true, nil
	}
	found := false
	_, err := s.PossibleModels(d, 1, func(logic.Interp) bool {
		found = true
		return false
	})
	return found, err
}

// Models enumerates the possible models (the paper's PWS model set).
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (int, error) {
	return s.PossibleModels(d, limit, yield)
}

// CheckModel reports whether m is a possible model of d satisfying its
// integrity clauses — in polynomial time, without enumerating split
// programs:
//
//	m is the least model of some split program iff
//	(i)  every applicable rule (positive body ⊆ m) has a head atom
//	     in m (some nonempty choice within m exists), and
//	(ii) the least fixpoint of the "all heads within m" operator
//	     reaches every atom of m (each atom has a derivation whose
//	     choices stay inside m).
//
// Soundness: taking Sᵣ = head(r) ∩ m for every applicable rule gives a
// split program whose least model is exactly the fixpoint of (ii).
// Completeness: any split with least model m can only choose head
// atoms inside m on applicable rules, so its derivations are contained
// in the fixpoint of (ii).
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (bool, error) {
	if err := s.check(d); err != nil {
		return false, err
	}
	n := d.N()
	// Integrity clauses and rule applicability.
	for _, c := range d.Clauses {
		applicable := true
		for _, b := range c.PosBody {
			if !m.Holds(b) {
				applicable = false
				break
			}
		}
		if !applicable {
			continue
		}
		if c.IsIntegrity() {
			return false, nil
		}
		inM := false
		for _, h := range c.Head {
			if m.Holds(h) {
				inM = true
				break
			}
		}
		if !inM {
			return false, nil
		}
	}
	// Least fixpoint with all head choices restricted to m.
	derived := logic.NewInterp(n)
	for changed := true; changed; {
		changed = false
		for _, c := range d.Clauses {
			if c.IsIntegrity() {
				continue
			}
			fire := true
			for _, b := range c.PosBody {
				if !derived.Holds(b) {
					fire = false
					break
				}
			}
			if !fire {
				continue
			}
			for _, h := range c.Head {
				if m.Holds(h) && !derived.Holds(h) {
					derived.True.Set(int(h))
					changed = true
				}
			}
		}
	}
	return derived.Equal(m), nil
}
