package pws

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func TestRegisteredBothNames(t *testing.T) {
	p, ok1 := core.New("PWS", core.Options{})
	m, ok2 := core.New("PMS", core.Options{})
	if !ok1 || !ok2 || p.Name() != "PWS" || m.Name() != "PMS" {
		t.Fatalf("PWS/PMS registration broken")
	}
}

func TestSplitProgramSemantics(t *testing.T) {
	// DB = {a∨b, c←a∧b}: possible models are {a}, {b}, {a,b,c} —
	// note {a,b} is NOT possible ({a,b} split derives c) and {a,c} is
	// not possible either (c needs both a and b).
	d := dbtest.MustParse("a | b. c :- a, b.")
	s := New(core.Options{})
	var got []string
	if _, err := s.Models(d, 0, func(m logic.Interp) bool {
		got = append(got, m.String(d.Voc))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"{a}": true, "{b}": true, "{a, b, c}": true}
	if len(got) != 3 {
		t.Fatalf("possible models = %v, want 3", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected possible model %s", g)
		}
	}
}

func TestPWSDiffersFromDDR(t *testing.T) {
	// On DB = {a∨b, c←a∧b}, the formula ¬c ∨ (a∧b) holds in every
	// possible model but fails in the DDR model {a,c}.
	d := dbtest.MustParse("a | b. c :- a, b.")
	s := New(core.Options{})
	f := logic.MustParseFormula("-c | (a & b)", d.Voc)
	got, err := s.InferFormula(d, f)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatalf("PWS must infer ¬c ∨ (a∧b)")
	}
	if refsem.Entails(refsem.DDR(d), f) {
		t.Fatalf("DDR should NOT infer ¬c ∨ (a∧b) — the semantics differ here")
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := New(core.Options{})
	for iter := 0; iter < 250; iter++ {
		var d *db.DB
		if iter%2 == 0 {
			d = gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(6)))
		} else {
			d = gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(6)))
		}
		want := refsem.PWS(d)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: PWS model set mismatch\nDB:\n%swant %d got %d",
				iter, d.String(), len(want), len(got))
		}
	}
}

func TestInferLiteralMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	s := New(core.Options{})
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		set := refsem.PWS(d)
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(set, logic.LitF(l))
			got, err := s.InferLiteral(d, l)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("iter %d: InferLiteral(%s)=%v want %v\nDB:\n%s",
					iter, d.Voc.LitString(l), got, want, d.String())
			}
		}
	}
}

func TestInferFormulaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(refsem.PWS(d), f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: InferFormula=%v want %v\nDB:\n%sF: %s",
				iter, got, want, d.String(), f.String(d.Voc))
		}
	}
}

func TestTractableCellUsesNoOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	s := New(core.Options{})
	for iter := 0; iter < 50; iter++ {
		d := gen.Random(rng, gen.Positive(4+rng.Intn(8), 1+rng.Intn(10)))
		before := s.Oracle().Counters().NPCalls
		a := logic.Atom(rng.Intn(d.N()))
		if _, err := s.InferLiteral(d, logic.NegLit(a)); err != nil {
			t.Fatal(err)
		}
		if after := s.Oracle().Counters().NPCalls; after != before {
			t.Fatalf("tractable PWS cell consumed %d oracle calls", after-before)
		}
	}
}

func TestIntegrityClausesRespected(t *testing.T) {
	// Unlike DDR, PWS respects integrity clauses (Chan's improvement):
	// in Example 3.1, PWS infers ¬c.
	d := dbtest.MustParse("a | b. :- a, b. c :- a, b.")
	s := New(core.Options{})
	c, _ := d.Voc.Lookup("c")
	got, err := s.InferLiteral(d, logic.NegLit(c))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatalf("PWS must infer ¬c in Example 3.1 (integrity clause kills the {a,b,c} world)")
	}
}

func TestNegationUnsupported(t *testing.T) {
	d := dbtest.MustParse("a :- not b.")
	s := New(core.Options{})
	if _, err := s.InferLiteral(d, logic.PosLit(0)); err != core.ErrUnsupported {
		t.Fatalf("PWS with negation should be unsupported, got %v", err)
	}
}

func TestHasModel(t *testing.T) {
	s := New(core.Options{})
	if ok, _ := s.HasModel(dbtest.MustParse("a | b.")); !ok {
		t.Fatalf("PWS model must exist without ICs")
	}
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. :- a. :- b.")); ok {
		t.Fatalf("no possible world survives the ICs")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
