// Package gcwa implements Minker's Generalized Closed World Assumption
// (§3.1 of the paper):
//
//	GCWA(DB) = {M ∈ M(DB) : ∀x ∈ V. MM(DB) ⊨ ¬x ⇒ M ⊨ ¬x}
//
// GCWA is the Q = Z = ∅ special case of CCWA ("GCWA coincides with
// CCWA for Q = Z = ∅, hence P = V" — the paper uses this in the Δ-log
// proof sketch), so the implementation delegates to package ccwa with
// the full-minimisation partition.
//
// Complexity shape: literal inference Π₂ᵖ-complete (Theorem 3.1 —
// even for positive DDBs); formula inference Π₂ᵖ-hard, in
// P^Σ₂ᵖ[O(log n)]; model existence O(1) on positive DDBs and
// NP-complete with integrity clauses.
package gcwa

import (
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/semantics/ccwa"
)

func init() {
	core.Register("GCWA", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "GCWA",
		Complexity: "literal Πᵖ₂-complete; formula Πᵖ₂-hard, in P^Σᵖ₂[O(log n)]; existence O(1) positive / NP with IC",
		Cells:      core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellNP},
	})
}

// Sem is the GCWA semantics.
type Sem struct {
	inner *ccwa.Sem
}

// New returns a GCWA instance. Any configured partition is ignored:
// GCWA always minimises the full vocabulary.
func New(opts core.Options) *Sem {
	opts.Partition = nil // force P = V
	return &Sem{inner: ccwa.New(opts)}
}

// Name returns "GCWA".
func (s *Sem) Name() string { return "GCWA" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.inner.Oracle() }

// NegatedAtoms returns {x : MM(DB) ⊨ ¬x}, the literals GCWA adds.
func (s *Sem) NegatedAtoms(d *db.DB) []logic.Atom { return s.inner.NegatedAtoms(d) }

// NegatedAtomsPar is NegatedAtoms across a worker pool (one
// Π₂ᵖ-shaped co-search per atom, same oracle-call total as serial).
func (s *Sem) NegatedAtomsPar(d *db.DB, opt models.ParOptions) []logic.Atom {
	return s.inner.NegatedAtomsPar(d, opt)
}

// InferLiteral decides GCWA(DB) ⊨ l. For negative literals this is the
// Π₂ᵖ-complete minimal-model entailment MM(DB) ⊨ ¬x of Theorem 3.1.
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.inner.InferLiteral(d, l)
}

// InferFormula decides GCWA(DB) ⊨ f.
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (bool, error) {
	return s.inner.InferFormula(d, f)
}

// InferFormulaDeltaLog decides GCWA(DB) ⊨ f with O(log n) Σ₂ᵖ oracle
// calls (the Table 1/2 upper bound for the formula column).
func (s *Sem) InferFormulaDeltaLog(d *db.DB, f *logic.Formula) (bool, error) {
	return s.inner.InferFormulaDeltaLog(d, f)
}

// HasModel decides GCWA(DB) ≠ ∅ ⟺ DB satisfiable.
func (s *Sem) HasModel(d *db.DB) (bool, error) { return s.inner.HasModel(d) }

// Models enumerates GCWA(DB).
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (int, error) {
	return s.inner.Models(d, limit, yield)
}

// CheckModel reports whether m ∈ GCWA(DB).
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (bool, error) {
	return s.inner.CheckModel(d, m)
}
