package gcwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func newSem() *Sem { return New(core.Options{}) }

func collect(t *testing.T, s *Sem, d *db.DB) []logic.Interp {
	t.Helper()
	var out []logic.Interp
	if _, err := s.Models(d, 0, func(m logic.Interp) bool {
		out = append(out, m.Clone())
		return true
	}); err != nil {
		t.Fatalf("Models: %v", err)
	}
	return out
}

func TestRegistered(t *testing.T) {
	s, ok := core.New("GCWA", core.Options{})
	if !ok || s.Name() != "GCWA" {
		t.Fatalf("GCWA not registered correctly")
	}
}

func TestMinkerExample(t *testing.T) {
	// Minker's classic: DB = {a ∨ b}. Minimal models {a},{b}: neither
	// ¬a nor ¬b is inferred, but ¬(a∧b) holds in all GCWA models and
	// GCWA(DB) excludes nothing beyond M(DB)... in fact no atom is
	// false in all minimal models, so GCWA(DB) = M(DB).
	d := dbtest.MustParse("a | b.")
	s := newSem()
	for _, name := range []string{"a", "b"} {
		a, _ := d.Voc.Lookup(name)
		if got, _ := s.InferLiteral(d, logic.NegLit(a)); got {
			t.Fatalf("GCWA must not infer ¬%s from a∨b", name)
		}
		if got, _ := s.InferLiteral(d, logic.PosLit(a)); got {
			t.Fatalf("GCWA must not infer %s from a∨b", name)
		}
	}
	ms := collect(t, s, d)
	if len(ms) != 3 {
		t.Fatalf("GCWA(a|b) should have 3 models, got %d", len(ms))
	}
}

func TestGCWANegatesUnsupportedAtom(t *testing.T) {
	// c occurs in no head: GCWA ⊨ ¬c.
	d := dbtest.MustParse("a | b.")
	c := d.Voc.Intern("c")
	s := newSem()
	if got, _ := s.InferLiteral(d, logic.NegLit(c)); !got {
		t.Fatalf("GCWA must infer ¬c when c cannot be true in a minimal model")
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newSem()
	for iter := 0; iter < 250; iter++ {
		var d *db.DB
		if iter%2 == 0 {
			d = gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(7)))
		} else {
			d = gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
		}
		want := refsem.GCWA(d)
		got := collect(t, s, d)
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: GCWA model set mismatch\nDB:\n%swant %d got %d", iter, d.String(), len(want), len(got))
		}
	}
}

func TestInferLiteralMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := newSem()
	for iter := 0; iter < 250; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		set := refsem.GCWA(d)
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(set, logic.LitF(l))
			got, err := s.InferLiteral(d, l)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if got != want {
				t.Fatalf("iter %d: InferLiteral(%s)=%v want %v\nDB:\n%s",
					iter, d.Voc.LitString(l), got, want, d.String())
			}
		}
	}
}

func TestInferFormulaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := newSem()
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(refsem.GCWA(d), f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if got != want {
			t.Fatalf("iter %d: InferFormula=%v want %v\nDB:\n%sF: %s",
				iter, got, want, d.String(), f.String(d.Voc))
		}
	}
}

func TestDeltaLogAgreesWithDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := newSem()
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
		f := randomFormula(rng, n, 2)
		direct, _ := s.InferFormula(d, f)
		dlog, err := s.InferFormulaDeltaLog(d, f)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if direct != dlog {
			t.Fatalf("iter %d: Δ-log=%v direct=%v\nDB:\n%sF: %s",
				iter, dlog, direct, d.String(), f.String(d.Voc))
		}
	}
}

func TestDeltaLogOracleBudget(t *testing.T) {
	// The Δ-log algorithm must stay within ⌈log₂(n+1)⌉ + 1 Σ₂ᵖ calls.
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{4, 8, 12} {
		d := gen.Random(rng, gen.Positive(n, 2*n))
		s := newSem()
		f := logic.MustParseFormula("p0 | -p1", d.Voc)
		before := s.Oracle().Counters().Sigma2Calls
		if _, err := s.InferFormulaDeltaLog(d, f); err != nil {
			t.Fatal(err)
		}
		calls := s.Oracle().Counters().Sigma2Calls - before
		budget := int64(ceilLog2(n+1) + 1)
		if calls > budget {
			t.Fatalf("n=%d: %d Σ₂ᵖ calls, budget %d", n, calls, budget)
		}
		if calls == 0 {
			t.Fatalf("n=%d: Δ-log made no Σ₂ᵖ calls at all", n)
		}
	}
}

func ceilLog2(x int) int {
	c, v := 0, 1
	for v < x {
		v *= 2
		c++
	}
	return c
}

func TestHasModel(t *testing.T) {
	s := newSem()
	if ok, _ := s.HasModel(dbtest.MustParse("a | b.")); !ok {
		t.Fatalf("positive DDB always has a GCWA model")
	}
	if ok, _ := s.HasModel(dbtest.MustParse("a. :- a.")); ok {
		t.Fatalf("inconsistent DB has no GCWA model")
	}
}

func TestNegatedAtoms(t *testing.T) {
	d := dbtest.MustParse("a | b. c :- a, b.")
	s := newSem()
	neg := s.NegatedAtoms(d)
	// Minimal models {a},{b}: c false in both → ¬c; a,b not.
	if len(neg) != 1 || d.Voc.Name(neg[0]) != "c" {
		var names []string
		for _, a := range neg {
			names = append(names, d.Voc.Name(a))
		}
		t.Fatalf("NegatedAtoms = %v, want [c]", names)
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
