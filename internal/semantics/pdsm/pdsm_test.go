package pdsm

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func TestRegistered(t *testing.T) {
	if _, ok := core.New("PDSM", core.Options{}); !ok {
		t.Fatalf("PDSM not registered")
	}
}

func collectPartials(t *testing.T, s *Sem, d *db.DB) []logic.Partial {
	t.Helper()
	var out []logic.Partial
	if _, err := s.PartialModels(d, 0, func(p logic.Partial) bool {
		out = append(out, p.Clone())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func samePartialSet(a, b []logic.Partial) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[string]int{}
	for _, p := range a {
		seen[p.Key()]++
	}
	for _, p := range b {
		if seen[p.Key()] == 0 {
			return false
		}
		seen[p.Key()]--
	}
	return true
}

func TestWellFoundedExample(t *testing.T) {
	// {a ← ¬a}: the unique partial stable model has a undefined —
	// PDSM extends the well-founded semantics.
	d := dbtest.MustParse("a :- not a.")
	s := New(core.Options{})
	ps := collectPartials(t, s, d)
	if len(ps) != 1 {
		t.Fatalf("got %d partial stable models, want 1", len(ps))
	}
	a, _ := d.Voc.Lookup("a")
	if ps[0].Value(a) != logic.Undefined {
		t.Fatalf("a should be undefined, got %v", ps[0].Value(a))
	}
	// Consequently DSM has no model but PDSM does (the distinction the
	// two Σ₂ᵖ ∃model cells share only in the general bound).
	if ok, _ := s.HasModel(d); !ok {
		t.Fatalf("PDSM model must exist for {a←¬a}")
	}
}

func TestEvenLoopPartialModels(t *testing.T) {
	// {a ← ¬b, b ← ¬a}: partial stable models are {a=1,b=0},
	// {a=0,b=1} and the well-founded {a=½, b=½}.
	d := dbtest.MustParse("a :- not b. b :- not a.")
	s := New(core.Options{})
	ps := collectPartials(t, s, d)
	if len(ps) != 3 {
		var desc []string
		for _, p := range ps {
			desc = append(desc, p.String(d.Voc))
		}
		t.Fatalf("got %d partial stable models (%v), want 3", len(ps), desc)
	}
}

func TestMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	s := New(core.Options{})
	for iter := 0; iter < 200; iter++ {
		d := gen.Random(rng, gen.Normal(2+rng.Intn(3), 1+rng.Intn(6)))
		want := refsem.PDSM(d)
		got := collectPartials(t, s, d)
		if !samePartialSet(want, got) {
			t.Fatalf("iter %d: PDSM mismatch: want %d got %d\nDB:\n%s",
				iter, len(want), len(got), d.String())
		}
	}
}

func TestPositiveDBTotalPartialsAreMinimalModels(t *testing.T) {
	// Paper: PDSM coincides with DSM on positive DBs, and DSM = MM
	// there; so the TOTAL partial stable models are exactly MM(DB).
	rng := rand.New(rand.NewSource(102))
	s := New(core.Options{})
	for iter := 0; iter < 100; iter++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(3), 1+rng.Intn(5)))
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(refsem.MinimalModels(d), got) {
			t.Fatalf("iter %d: total PDSM ≠ MM on positive DB\nDB:\n%s", iter, d.String())
		}
	}
}

func TestTotalPartialStableAreStable(t *testing.T) {
	// Total partial stable models must coincide with DSM(DB).
	rng := rand.New(rand.NewSource(103))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.Normal(2+rng.Intn(3), 1+rng.Intn(5)))
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(refsem.DSM(d), got) {
			t.Fatalf("iter %d: total PDSM ≠ DSM\nDB:\n%s", iter, d.String())
		}
	}
}

func TestInferenceThreeValued(t *testing.T) {
	// In {a←¬a} the unique PSM has a=½, so neither a nor ¬a is
	// inferred, but a∨¬a is still NOT inferred 3-valuedly (value ½) —
	// the semantics is genuinely 3-valued.
	d := dbtest.MustParse("a :- not a.")
	s := New(core.Options{})
	a, _ := d.Voc.Lookup("a")
	if got, _ := s.InferLiteral(d, logic.PosLit(a)); got {
		t.Fatalf("a must not be inferred")
	}
	if got, _ := s.InferLiteral(d, logic.NegLit(a)); got {
		t.Fatalf("¬a must not be inferred")
	}
	f := logic.MustParseFormula("a | -a", d.Voc)
	if got, _ := s.InferFormula(d, f); got {
		t.Fatalf("a ∨ ¬a has value ½, must not be inferred")
	}
}

func TestIsPartialStableSpotChecks(t *testing.T) {
	d := dbtest.MustParse("a :- not b. b :- not a.")
	s := New(core.Options{})
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")

	wf := logic.NewPartial(2)
	wf.SetValue(a, logic.Undefined)
	wf.SetValue(b, logic.Undefined)
	if !s.IsPartialStable(d, wf) {
		t.Fatalf("well-founded model should be partial stable")
	}

	tot := logic.NewPartial(2)
	tot.SetValue(a, logic.True)
	if !s.IsPartialStable(d, tot) {
		t.Fatalf("{a} should be partial stable")
	}

	bad := logic.NewPartial(2)
	bad.SetValue(a, logic.True)
	bad.SetValue(b, logic.True)
	if s.IsPartialStable(d, bad) {
		t.Fatalf("{a,b} should not be partial stable")
	}
}

func TestHasModelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.Normal(2+rng.Intn(3), 1+rng.Intn(5)))
		want := len(refsem.PDSM(d)) > 0
		got, err := s.HasModel(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: HasModel=%v want %v\nDB:\n%s", iter, got, want, d.String())
		}
	}
}
