// Package pdsm implements Przymusinski's Partial Disjunctive Stable
// Model semantics (§5.2 of the paper), the 3-valued generalisation of
// DSM extending the well-founded semantics: truth values 1 (true),
// 0.5 (undefined), 0 (false).
//
// For a partial interpretation M, the 3-valued reduct DB^M replaces
// every negative body literal ¬c by the constant 1 − M(c); M is a
// partial stable model iff M is a minimal 3-valued model of DB^M in
// the pointwise truth ordering (false < undefined < true).
//
// A clause a1∨…∨an ← body is 3-valued-satisfied when
// max(val(ai)) ≥ min(val(body)); an integrity clause (empty head)
// requires min(val(body)) = 0.
//
// Complexity shape: identical to DSM (the paper: "Summarizing, we
// obtain the same complexity results for PDSM as for DSM") — literal
// and formula inference Π₂ᵖ-complete, model existence Σ₂ᵖ-complete
// (the lower bound holding even without integrity clauses).
//
// Algorithms: candidates are enumerated over the 3ⁿ partial
// interpretations (the explicit guess of the Σ₂ᵖ/Π₂ᵖ structure;
// benchmark sizes keep n small); the minimality verification is one
// NP-oracle call on a 2n-variable Boolean encoding of the 3-valued
// reduct (t_a ≡ "a ≥ 1", u_a ≡ "a ≥ ½").
//
// For the generic core.Semantics interface, Models yields the total
// partial stable models (which coincide with DSM(DB)); the partial
// models are exposed through PartialModels, and inference is 3-valued:
// a formula is inferred iff it evaluates to 1 in every partial stable
// model.
package pdsm

import (
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

func init() {
	core.Register("PDSM", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "PDSM",
		Complexity: "literal/formula Πᵖ₂-complete; existence Σᵖ₂-complete (even without IC)",
		Cells:      core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellSigma2},
	})
}

// Sem is the PDSM semantics.
type Sem struct {
	opts core.Options
}

// New returns a PDSM instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts}
}

// Name returns "PDSM".
func (s *Sem) Name() string { return "PDSM" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

// clauseVal3 returns the 3-valued body value of clause c under p:
// min over positive body atoms and the constants 1−p(c) for negative
// body atoms.
func bodyVal3(c db.Clause, p logic.Partial) logic.TruthValue {
	v := logic.True
	for _, b := range c.PosBody {
		if w := p.Value(b); w < v {
			v = w
		}
	}
	for _, cn := range c.NegBody {
		if w := logic.True - p.Value(cn); w < v {
			v = w
		}
	}
	return v
}

func headVal3(c db.Clause, p logic.Partial) logic.TruthValue {
	v := logic.False
	for _, h := range c.Head {
		if w := p.Value(h); w > v {
			v = w
		}
	}
	return v
}

// Sat3 reports whether p is a 3-valued model of d:
// val(head) ≥ val(body) for every clause (empty head has value 0).
func Sat3(d *db.DB, p logic.Partial) bool {
	for _, c := range d.Clauses {
		if headVal3(c, p) < bodyVal3(c, p) {
			return false
		}
	}
	return true
}

// IsPartialStable reports whether p is a partial stable model of d:
// p ⊨₃ DB^p and no 3-valued model of DB^p lies strictly below p in
// the truth ordering. The minimality test is one NP-oracle call.
func (s *Sem) IsPartialStable(d *db.DB, p logic.Partial) bool {
	if !sat3Reduct(d, p, p) {
		return false
	}
	return !s.hasSmallerReductModel(d, p)
}

// sat3Reduct reports whether q ⊨₃ DB^p (reduct w.r.t. p, evaluation
// under q).
func sat3Reduct(d *db.DB, p, q logic.Partial) bool {
	for _, c := range d.Clauses {
		// Body value under q, with negative literals frozen to their
		// value under p (the reduct's constants).
		v := logic.True
		for _, b := range c.PosBody {
			if w := q.Value(b); w < v {
				v = w
			}
		}
		for _, cn := range c.NegBody {
			if w := logic.True - p.Value(cn); w < v {
				v = w
			}
		}
		if headVal3(c, q) < v {
			return false
		}
	}
	return true
}

// hasSmallerReductModel reports whether some 3-valued model q of DB^p
// satisfies q ≤ p pointwise and q ≠ p — a single SAT query over the
// Boolean encoding t_a ("a is true"), u_a ("a is at least undefined").
func (s *Sem) hasSmallerReductModel(d *db.DB, p logic.Partial) bool {
	n := d.N()
	voc := logic.NewVocabulary()
	t := make([]logic.Atom, n)
	u := make([]logic.Atom, n)
	for v := 0; v < n; v++ {
		t[v] = voc.Intern("t$" + d.Voc.Name(logic.Atom(v)))
	}
	for v := 0; v < n; v++ {
		u[v] = voc.Intern("u$" + d.Voc.Name(logic.Atom(v)))
	}
	var cnf logic.CNF
	// Coherence: t_a → u_a.
	for v := 0; v < n; v++ {
		cnf = append(cnf, logic.Clause{logic.NegLit(t[v]), logic.PosLit(u[v])})
	}
	// Reduct clauses at both levels.
	for _, c := range d.Clauses {
		cmin := logic.True
		for _, cn := range c.NegBody {
			if w := logic.True - p.Value(cn); w < cmin {
				cmin = w
			}
		}
		// Level ½: if all constants ≥ ½ then (∧ u_b) → (∨ u_h).
		if cmin >= logic.Undefined {
			cl := make(logic.Clause, 0, len(c.PosBody)+len(c.Head))
			for _, b := range c.PosBody {
				cl = append(cl, logic.NegLit(u[b]))
			}
			for _, h := range c.Head {
				cl = append(cl, logic.PosLit(u[h]))
			}
			cnf = append(cnf, cl)
		}
		// Level 1: if all constants are 1 then (∧ t_b) → (∨ t_h).
		if cmin == logic.True {
			cl := make(logic.Clause, 0, len(c.PosBody)+len(c.Head))
			for _, b := range c.PosBody {
				cl = append(cl, logic.NegLit(t[b]))
			}
			for _, h := range c.Head {
				cl = append(cl, logic.PosLit(t[h]))
			}
			cnf = append(cnf, cl)
		}
	}
	// q ≤ p pointwise, and q ≠ p.
	var diff logic.Clause
	for v := 0; v < n; v++ {
		switch p.Value(logic.Atom(v)) {
		case logic.False:
			cnf = append(cnf, logic.Clause{logic.NegLit(u[v])})
		case logic.Undefined:
			cnf = append(cnf, logic.Clause{logic.NegLit(t[v])})
			diff = append(diff, logic.NegLit(u[v])) // drop to false
		case logic.True:
			diff = append(diff, logic.NegLit(t[v])) // drop below true
		}
	}
	if len(diff) == 0 {
		return false // p is the all-false interpretation: nothing below
	}
	cnf = append(cnf, diff)
	sat, _ := s.opts.Oracle.Sat(voc.Size(), cnf)
	return sat
}

// PartialModels enumerates the partial stable models of d over the 3ⁿ
// candidate space. limit ≤ 0 means unlimited. Returns the count.
func (s *Sem) PartialModels(d *db.DB, limit int, yield func(logic.Partial) bool) (count int, err error) {
	defer budget.Recover(&err)
	n := d.N()
	if n > 18 {
		return 0, core.ErrUnsupported // 3^n candidate space
	}
	p := logic.NewPartial(n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			if !s.IsPartialStable(d, p) {
				return true
			}
			count++
			if !yield(p.Clone()) {
				return false
			}
			return limit <= 0 || count < limit
		}
		for _, tv := range []logic.TruthValue{logic.False, logic.Undefined, logic.True} {
			p.SetValue(logic.Atom(v), tv)
			if !rec(v + 1) {
				return false
			}
		}
		p.SetValue(logic.Atom(v), logic.False)
		return true
	}
	rec(0)
	return count, nil
}

// HasModel decides PDSM(DB) ≠ ∅ (Σ₂ᵖ-complete in general; O(1) on
// positive databases, where PDSM coincides with DSM = MM ≠ ∅).
func (s *Sem) HasModel(d *db.DB) (bool, error) {
	if !d.HasNegation() && !d.HasIntegrityClauses() {
		return true, nil
	}
	found := false
	_, err := s.PartialModels(d, 1, func(logic.Partial) bool {
		found = true
		return false
	})
	return found, err
}

// InferFormula decides PDSM(DB) ⊨ f: f evaluates to true (1) under
// 3-valued Kleene evaluation in every partial stable model.
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (bool, error) {
	holds := true
	_, err := s.PartialModels(d, 0, func(p logic.Partial) bool {
		if f.Eval3(p) != logic.True {
			holds = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return holds, nil
}

// InferLiteral decides PDSM(DB) ⊨ l.
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.InferFormula(d, logic.LitF(l))
}

// Models yields the total partial stable models as two-valued
// interpretations; these coincide with the disjunctive stable models.
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (int, error) {
	count := 0
	_, err := s.PartialModels(d, 0, func(p logic.Partial) bool {
		if !p.IsTotal() {
			return true
		}
		count++
		if !yield(p.Total()) {
			return false
		}
		return limit <= 0 || count < limit
	})
	return count, err
}

// CheckModel reports whether the TOTAL interpretation m is a partial
// stable model (total partial stable models = disjunctive stable
// models).
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (ok bool, err error) {
	defer budget.Recover(&err)
	p := logic.NewPartial(d.N())
	for v := 0; v < d.N(); v++ {
		if m.Holds(logic.Atom(v)) {
			p.SetValue(logic.Atom(v), logic.True)
		}
	}
	return s.IsPartialStable(d, p), nil
}
