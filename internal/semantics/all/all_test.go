package all_test

import (
	"testing"

	"disjunct/internal/core"

	_ "disjunct/internal/semantics/all"
)

// TestEveryRegisteredSemanticsIsDescribed pins the dispatch contract:
// the serving layer and workload generators rely on core.InfoFor for
// every name core.Names returns.
func TestEveryRegisteredSemanticsIsDescribed(t *testing.T) {
	names := core.Names()
	if len(names) < 11 {
		t.Fatalf("only %d semantics registered: %v", len(names), names)
	}
	for _, name := range names {
		info, ok := core.InfoFor(name)
		if !ok {
			t.Errorf("%s: registered but not described", name)
			continue
		}
		if info.Name != name || info.Complexity == "" {
			t.Errorf("%s: malformed info %+v", name, info)
		}
	}
	if len(core.Infos()) != len(names) {
		t.Errorf("Infos() returned %d entries for %d registered names", len(core.Infos()), len(names))
	}
}

func TestApplicableFlags(t *testing.T) {
	cases := []struct {
		name                 string
		negation, ic, expect bool
	}{
		{"GCWA", true, true, true},
		{"DSM", true, true, true},
		{"DDR", true, false, false},
		{"DDR", false, true, true},
		{"PWS", true, false, false},
		{"PERF", false, true, false},
		{"PERF", true, false, true},
		{"ICWA", false, true, false},
	}
	for _, c := range cases {
		info, ok := core.InfoFor(c.name)
		if !ok {
			t.Fatalf("%s not described", c.name)
		}
		if got := info.Applicable(c.negation, c.ic); got != c.expect {
			t.Errorf("%s.Applicable(neg=%v, ic=%v) = %v, want %v", c.name, c.negation, c.ic, got, c.expect)
		}
	}
}
