package all_test

import (
	"errors"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"

	_ "disjunct/internal/semantics/all"
)

// TestEveryRegisteredSemanticsIsDescribed pins the dispatch contract:
// the serving layer and workload generators rely on core.InfoFor for
// every name core.Names returns.
func TestEveryRegisteredSemanticsIsDescribed(t *testing.T) {
	names := core.Names()
	if len(names) < 11 {
		t.Fatalf("only %d semantics registered: %v", len(names), names)
	}
	for _, name := range names {
		info, ok := core.InfoFor(name)
		if !ok {
			t.Errorf("%s: registered but not described", name)
			continue
		}
		if info.Name != name || info.Complexity == "" {
			t.Errorf("%s: malformed info %+v", name, info)
		}
	}
	if len(core.Infos()) != len(names) {
		t.Errorf("Infos() returned %d entries for %d registered names", len(core.Infos()), len(names))
	}
}

// TestComplexityCellsComplete pins the planner's metadata contract:
// every registered semantics must populate all three machine-readable
// complexity cells with classes from the closed set, because an
// unpopulated cell silently degrades that semantics to worst-case Πᵖ₂
// in cost-class routing and makes it shed-first under overload.
func TestComplexityCellsComplete(t *testing.T) {
	for _, name := range core.Names() {
		info, ok := core.InfoFor(name)
		if !ok {
			t.Errorf("%s: not described", name)
			continue
		}
		if !info.Cells.Complete() {
			t.Errorf("%s: incomplete complexity cells %+v", name, info.Cells)
		}
		for _, kind := range []string{"literal", "formula", "model"} {
			if c := info.Cell(kind); !core.KnownCells[c] {
				t.Errorf("%s: Cell(%q) = %q outside the closed set", name, kind, c)
			}
		}
		if c := info.Cell("nonsense"); c != core.CellPi2 {
			t.Errorf("%s: Cell of an unknown kind = %q, want worst-case %q", name, c, core.CellPi2)
		}
	}
}

// TestApplicabilityFlagsMatchImplementation probes every registered
// semantics with a normal database (negation, no integrity clauses)
// and a positive one with a denial (integrity clause, no negation):
// the implementation must reject with ErrUnsupported exactly when the
// described NoNegation/NoIC flags say the database is outside its
// class. A flag that over-claims makes dispatchers (loadgen, planner
// brute eligibility, /v1/semantics clients) route queries into typed
// 422s; one that under-claims hides a whole fragment from them.
func TestApplicabilityFlagsMatchImplementation(t *testing.T) {
	negDB, err := db.Parse("a :- not b. b | c.")
	if err != nil {
		t.Fatalf("negation probe: %v", err)
	}
	icDB, err := db.Parse("a | b. :- a, b.")
	if err != nil {
		t.Fatalf("integrity probe: %v", err)
	}
	probes := []struct {
		label string
		d     *db.DB
		neg   bool
		ic    bool
	}{
		{"negation", negDB, true, false},
		{"integrity", icDB, false, true},
	}
	for _, name := range core.Names() {
		info, ok := core.InfoFor(name)
		if !ok {
			t.Fatalf("%s: not described", name)
		}
		for _, p := range probes {
			s, ok := core.New(name, core.Options{})
			if !ok {
				t.Fatalf("%s: registered but not constructible", name)
			}
			_, err := s.InferLiteral(p.d, logic.NegLit(logic.Atom(0)))
			unsupported := errors.Is(err, core.ErrUnsupported)
			if err != nil && !unsupported {
				t.Errorf("%s on %s probe: unexpected error %v", name, p.label, err)
				continue
			}
			if want := !info.Applicable(p.neg, p.ic); unsupported != want {
				t.Errorf("%s on %s probe: ErrUnsupported=%v but flags %+v imply %v",
					name, p.label, unsupported, info, want)
			}
		}
	}
}

func TestApplicableFlags(t *testing.T) {
	cases := []struct {
		name                 string
		negation, ic, expect bool
	}{
		{"GCWA", true, true, true},
		{"DSM", true, true, true},
		{"DDR", true, false, false},
		{"DDR", false, true, true},
		{"PWS", true, false, false},
		{"PERF", false, true, false},
		{"PERF", true, false, true},
		{"ICWA", false, true, false},
	}
	for _, c := range cases {
		info, ok := core.InfoFor(c.name)
		if !ok {
			t.Fatalf("%s not described", c.name)
		}
		if got := info.Applicable(c.negation, c.ic); got != c.expect {
			t.Errorf("%s.Applicable(neg=%v, ic=%v) = %v, want %v", c.name, c.negation, c.ic, got, c.expect)
		}
	}
}
