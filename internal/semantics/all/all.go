// Package all registers every semantics implementation with the core
// registry. Dispatch-driven binaries (the serving layer, the soak
// tester, the load generator) blank-import it instead of naming the
// eleven packages individually, so a newly added semantics becomes
// servable by appearing here once.
package all

import (
	_ "disjunct/internal/semantics/ccwa"
	_ "disjunct/internal/semantics/cwa"
	_ "disjunct/internal/semantics/ddr"
	_ "disjunct/internal/semantics/dsm"
	_ "disjunct/internal/semantics/ecwa"
	_ "disjunct/internal/semantics/egcwa"
	_ "disjunct/internal/semantics/gcwa"
	_ "disjunct/internal/semantics/icwa"
	_ "disjunct/internal/semantics/pdsm"
	_ "disjunct/internal/semantics/perf"
	_ "disjunct/internal/semantics/pws"
)
