// Package ddr implements the Disjunctive Database Rule of Ross and
// Topor (§3.2 of the paper), equivalent to the Weak GCWA of Rajasekar,
// Lobo, and Minker:
//
//	DDR(DB) = {M ∈ M(DB) : M ⊨ ¬x for every atom x not occurring
//	                        in T_DB↑ω}
//
// where T_DB↑ω is the disjunctive consequence fixpoint. DDR is defined
// for databases without negation; notably it IGNORES integrity clauses
// when computing T_DB↑ω (the paper's Example 3.1: for
// DB = {a∨b, ←a∧b, c←a∧b}, DDR(DB) ⊭ ¬c) while the models themselves
// must satisfy them.
//
// Complexity shape: negative-literal inference is polynomial on
// positive DDBs without integrity clauses (Chan's entry in Table 1 —
// zero oracle calls here: one fixpoint computation); with integrity
// clauses literal inference is coNP-complete, and formula inference is
// coNP-complete in both regimes (classical entailment from DB plus the
// polynomially computable negated-atom set).
package ddr

import (
	"disjunct/internal/bitset"
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/fixpoint"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

func init() {
	core.Register("DDR", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Register("WGCWA", func(opts core.Options) core.Semantics {
		s := New(opts)
		s.name = "WGCWA"
		return s
	})
	ddrCell := "negative literal in P (no IC) / coNP with IC; formula coNP-complete; existence in P"
	ddrCells := core.Cells{Literal: core.CellCoNP, Formula: core.CellCoNP, Existence: core.CellP}
	core.Describe(core.Info{Name: "DDR", Complexity: ddrCell, Cells: ddrCells, NoNegation: true})
	core.Describe(core.Info{Name: "WGCWA", Complexity: ddrCell, Cells: ddrCells, NoNegation: true})
}

// Sem is the DDR ≡ WGCWA semantics.
type Sem struct {
	opts core.Options
	name string
}

// New returns a DDR instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts, name: "DDR"}
}

// Name returns "DDR" (or "WGCWA" when instantiated under that name).
func (s *Sem) Name() string { return s.name }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

// OccurringAtoms returns the atoms occurring in T_DB↑ω. For the
// occurrence question the full (worst-case exponential) state is not
// needed: an atom occurs in some derivable disjunction iff it lies in
// the all-heads-enabled least fixpoint, computed in polynomial time.
// Integrity clauses and the (unsupported) negative literals are
// ignored, per the DDR definition.
func (s *Sem) OccurringAtoms(d *db.DB) *bitset.Set {
	return fixpoint.PossiblyTrue(d)
}

// closureCNF is DB ∪ {¬x : x not occurring in T_DB↑ω}.
func (s *Sem) closureCNF(d *db.DB) logic.CNF {
	occ := s.OccurringAtoms(d)
	cnf := d.ToCNF()
	for v := 0; v < d.N(); v++ {
		if !occ.Test(v) {
			cnf = append(cnf, logic.Clause{logic.NegLit(logic.Atom(v))})
		}
	}
	return cnf
}

func (s *Sem) check(d *db.DB) error {
	if d.HasNegation() {
		return core.ErrUnsupported
	}
	return nil
}

// InferLiteral decides DDR(DB) ⊨ l.
//
// On a positive DDB without integrity clauses, a negative literal ¬x
// is inferred iff x does not occur in T_DB↑ω — Chan's polynomial
// algorithm, zero oracle calls. With integrity clauses (or for
// positive literals) the question becomes classical entailment from
// the closure: one NP-oracle call (the coNP-complete cells).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	if err := s.check(d); err != nil {
		return false, err
	}
	if !l.IsPos() && !d.HasIntegrityClauses() {
		occ := s.OccurringAtoms(d)
		return !occ.Test(int(l.Atom())), nil
	}
	return s.InferFormula(d, logic.LitF(l))
}

// InferFormula decides DDR(DB) ⊨ f: classical entailment from the
// closure (coNP; one NP-oracle call after the polynomial fixpoint).
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (ok bool, err error) {
	defer budget.Recover(&err)
	if err := s.check(d); err != nil {
		return false, err
	}
	return s.opts.Oracle.Entails(d.N(), s.closureCNF(d), f, d.Voc), nil
}

// HasModel decides DDR(DB) ≠ ∅: satisfiability of the closure. On a
// positive DDB without integrity clauses this is constantly true (the
// occurring atoms themselves form a model); with integrity clauses it
// is NP-complete.
func (s *Sem) HasModel(d *db.DB) (ok bool, err error) {
	defer budget.Recover(&err)
	if err := s.check(d); err != nil {
		return false, err
	}
	if !d.HasIntegrityClauses() {
		return true, nil
	}
	ok, _ = s.opts.Oracle.Sat(d.N(), s.closureCNF(d))
	return ok, nil
}

// Models enumerates DDR(DB): the models of the closure.
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	if err := s.check(d); err != nil {
		return 0, err
	}
	n := d.N()
	solver := s.opts.Oracle.SatSolver(n, s.closureCNF(d))
	solver.EnumerateModels(n, limit, func(model []bool) bool {
		s.opts.Oracle.CountCall()
		m := logic.NewInterp(n)
		for v := 0; v < n; v++ {
			m.True.SetTo(v, model[v])
		}
		count++
		return yield(m)
	})
	oracle.CheckEnumerate(solver)
	return count, nil
}

// CheckModel reports whether m ∈ DDR(DB): m models DB (integrity
// clauses included) and every atom not occurring in T_DB↑ω is false in
// m. Polynomial — no oracle calls.
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (bool, error) {
	if err := s.check(d); err != nil {
		return false, err
	}
	if !d.Sat(m) {
		return false, nil
	}
	occ := s.OccurringAtoms(d)
	for v := 0; v < d.N(); v++ {
		if m.Holds(logic.Atom(v)) && !occ.Test(v) {
			return false, nil
		}
	}
	return true, nil
}
