package ddr

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func TestRegisteredBothNames(t *testing.T) {
	d, ok1 := core.New("DDR", core.Options{})
	w, ok2 := core.New("WGCWA", core.Options{})
	if !ok1 || !ok2 || d.Name() != "DDR" || w.Name() != "WGCWA" {
		t.Fatalf("DDR/WGCWA registration broken")
	}
}

func TestPaperExample31(t *testing.T) {
	// Example 3.1: DB = {a∨b, ←a∧b, c←a∧b}: DDR(DB) ⊭ ¬c — the
	// fixpoint ignores the integrity clause, so c still "occurs".
	d := dbtest.MustParse("a | b. :- a, b. c :- a, b.")
	s := New(core.Options{})
	c, _ := d.Voc.Lookup("c")
	got, err := s.InferLiteral(d, logic.NegLit(c))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatalf("Example 3.1: DDR must NOT infer ¬c")
	}
	// GCWA (via minimal models) does infer ¬c here — the example's
	// point is exactly this contrast.
	if !refsem.Entails(refsem.GCWA(d), logic.MustParseFormula("-c", d.Voc)) {
		t.Fatalf("GCWA should infer ¬c in Example 3.1")
	}
}

func TestOccurrenceVsSubsumption(t *testing.T) {
	// DB = {a, a∨b}: the disjunction a∨b is itself in T_DB↑0, so b
	// occurs and ¬b is NOT inferred — DDR is weaker than GCWA, which
	// infers ¬b (unique minimal model {a}).
	d := dbtest.MustParse("a. a | b.")
	s := New(core.Options{})
	b, _ := d.Voc.Lookup("b")
	if got, _ := s.InferLiteral(d, logic.NegLit(b)); got {
		t.Fatalf("DDR must not infer ¬b from {a, a∨b}")
	}
	if !refsem.Entails(refsem.GCWA(d), logic.MustParseFormula("-b", d.Voc)) {
		t.Fatalf("GCWA should infer ¬b from {a, a∨b}")
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s := New(core.Options{})
	for iter := 0; iter < 250; iter++ {
		var d *db.DB
		if iter%2 == 0 {
			d = gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(6)))
		} else {
			d = gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(6)))
		}
		want := refsem.DDR(d)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: DDR model set mismatch\nDB:\n%swant %d got %d",
				iter, d.String(), len(want), len(got))
		}
	}
}

func TestOccurringAtomsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s := New(core.Options{})
	for iter := 0; iter < 200; iter++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(5), 1+rng.Intn(7)))
		want := refsem.DDROccurring(d)
		got := s.OccurringAtoms(d)
		for v := 0; v < d.N(); v++ {
			if want[v] != got.Test(v) {
				t.Fatalf("iter %d: occurrence of %s: fixpoint=%v reference=%v\nDB:\n%s",
					iter, d.Voc.Name(logic.Atom(v)), got.Test(v), want[v], d.String())
			}
		}
	}
}

func TestInferLiteralMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	s := New(core.Options{})
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		set := refsem.DDR(d)
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(set, logic.LitF(l))
			got, err := s.InferLiteral(d, l)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("iter %d: InferLiteral(%s)=%v want %v\nDB:\n%s",
					iter, d.Voc.LitString(l), got, want, d.String())
			}
		}
	}
}

func TestInferFormulaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(refsem.DDR(d), f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: InferFormula=%v want %v\nDB:\n%sF: %s",
				iter, got, want, d.String(), f.String(d.Voc))
		}
	}
}

func TestTractableCellUsesNoOracle(t *testing.T) {
	// The Table 1 cell: negative-literal inference on a positive DDB
	// without integrity clauses must consume ZERO NP-oracle calls.
	rng := rand.New(rand.NewSource(55))
	s := New(core.Options{})
	for iter := 0; iter < 50; iter++ {
		d := gen.Random(rng, gen.Positive(4+rng.Intn(8), 1+rng.Intn(10)))
		before := s.Oracle().Counters().NPCalls
		a := logic.Atom(rng.Intn(d.N()))
		if _, err := s.InferLiteral(d, logic.NegLit(a)); err != nil {
			t.Fatal(err)
		}
		if after := s.Oracle().Counters().NPCalls; after != before {
			t.Fatalf("tractable DDR cell consumed %d oracle calls", after-before)
		}
	}
}

func TestNegationUnsupported(t *testing.T) {
	d := dbtest.MustParse("a :- not b.")
	s := New(core.Options{})
	if _, err := s.InferLiteral(d, logic.PosLit(0)); err != core.ErrUnsupported {
		t.Fatalf("DDR with negation should be unsupported, got %v", err)
	}
}

func TestHasModel(t *testing.T) {
	s := New(core.Options{})
	if ok, _ := s.HasModel(dbtest.MustParse("a | b.")); !ok {
		t.Fatalf("no-IC DDR model must exist")
	}
	// DDR model existence with integrity clauses can fail even when DB
	// is satisfiable: non-occurring atoms are forced false.
	d := dbtest.MustParse("a | b. c. :- c, a. :- c, b.")
	if ok, _ := s.HasModel(d); ok {
		t.Fatalf("DDR(DB) should be empty: ICs contradict every closure model")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
