package egcwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/refsem"
)

func TestModelsParIsMinimalModels(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for iter := 0; iter < 30; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(3+rng.Intn(4), 1+rng.Intn(8)))
		want := refsem.MinimalModels(d)
		for _, w := range []int{1, 4, 0} {
			s := New(core.Options{})
			var got []logic.Interp
			s.ModelsPar(d, 0, func(m logic.Interp) bool {
				got = append(got, m.Clone())
				return true
			}, models.ParOptions{Workers: w})
			if !refsem.SameModelSet(want, got) {
				t.Fatalf("iter %d workers=%d: par MM mismatch (want %d got %d)\nDB:\n%s",
					iter, w, len(want), len(got), d.String())
			}
		}
	}
}
