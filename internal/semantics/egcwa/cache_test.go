package egcwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/semtest"
)

// TestCachedOracleCrossCheck: EGCWA with the oracle verdict cache must
// match EGCWA without it — verdicts, model sets, NP-call totals.
func TestCachedOracleCrossCheck(t *testing.T) {
	semtest.CrossCheckCached(t, "EGCWA", 30, func(iter int, rng *rand.Rand) *db.DB {
		if iter%2 == 0 {
			return gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(7)))
		}
		return gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
	})
}
