package egcwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func TestRegistered(t *testing.T) {
	if _, ok := core.New("EGCWA", core.Options{}); !ok {
		t.Fatalf("EGCWA not registered")
	}
}

func TestEGCWAIsMinimalModels(t *testing.T) {
	// EGCWA(DB) = MM(DB) (paper §3.3).
	rng := rand.New(rand.NewSource(41))
	s := New(core.Options{})
	for iter := 0; iter < 250; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		want := refsem.MinimalModels(d)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: EGCWA ≠ MM\nDB:\n%s", iter, d.String())
		}
	}
}

func TestEGCWAInfersIntegrityClauses(t *testing.T) {
	// Yahya–Henschen motivation: EGCWA infers the integrity clause
	// ¬(a ∧ b) from a ∨ b (true in both minimal models), which plain
	// GCWA-closure does not add as a literal.
	d := dbtest.MustParse("a | b.")
	s := New(core.Options{})
	f := logic.MustParseFormula("-(a & b)", d.Voc)
	got, err := s.InferFormula(d, f)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatalf("EGCWA must infer ¬(a∧b) from a∨b")
	}
	// But not ¬a or ¬b individually.
	a, _ := d.Voc.Lookup("a")
	if got, _ := s.InferLiteral(d, logic.NegLit(a)); got {
		t.Fatalf("EGCWA must not infer ¬a from a∨b")
	}
}

func TestEGCWAStrongerThanGCWAOnFormulas(t *testing.T) {
	// GCWA(DB) ⊇ EGCWA(DB) = MM(DB), so everything GCWA infers, EGCWA
	// infers too.
	rng := rand.New(rand.NewSource(42))
	s := New(core.Options{})
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		f := randomFormula(rng, n, 2)
		gcwaHolds := refsem.Entails(refsem.GCWA(d), f)
		egcwaHolds, _ := s.InferFormula(d, f)
		if gcwaHolds && !egcwaHolds {
			t.Fatalf("iter %d: GCWA infers but EGCWA does not\nDB:\n%sF: %s",
				iter, d.String(), f.String(d.Voc))
		}
	}
}

func TestHasModelNPCell(t *testing.T) {
	s := New(core.Options{})
	// Positive DDB: O(1) — always true.
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. c :- a.")); !ok {
		t.Fatalf("positive DDB must have minimal models")
	}
	// With integrity clauses: satisfiability (NP cell of Table 2).
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. :- a. :- b.")); ok {
		t.Fatalf("unsatisfiable DDDB must have no EGCWA model")
	}
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. :- a.")); !ok {
		t.Fatalf("satisfiable DDDB must have an EGCWA model")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
