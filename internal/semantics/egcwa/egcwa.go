// Package egcwa implements the Extended Generalized Closed World
// Assumption of Yahya and Henschen (§3.3 of the paper): DB is
// augmented by every integrity clause ¬a1 ∨ … ∨ ¬an true in all
// minimal models, and the resulting model set is exactly
//
//	EGCWA(DB) = MM(DB)
//
// — the minimal models. EGCWA is the Q = Z = ∅ case of ECWA; the
// implementation delegates to package ecwa with the full-minimisation
// partition.
//
// Complexity shape: literal and formula inference Π₂ᵖ-complete; model
// existence O(1) on positive DDBs and NP-complete with integrity
// clauses (Table 2 — the OCR of the paper preserves this cell).
package egcwa

import (
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/semantics/ecwa"
)

func init() {
	core.Register("EGCWA", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "EGCWA",
		Complexity: "literal/formula Πᵖ₂-complete; existence O(1) positive / NP with IC",
		Cells:      core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellNP},
	})
}

// Sem is the EGCWA semantics.
type Sem struct {
	inner *ecwa.Sem
}

// New returns an EGCWA instance. Any configured partition is ignored:
// EGCWA always minimises the full vocabulary.
func New(opts core.Options) *Sem {
	opts.Partition = nil
	return &Sem{inner: ecwa.New(opts)}
}

// Name returns "EGCWA".
func (s *Sem) Name() string { return "EGCWA" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.inner.Oracle() }

// InferLiteral decides MM(DB) ⊨ l (Π₂ᵖ-complete).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.inner.InferLiteral(d, l)
}

// InferFormula decides MM(DB) ⊨ f (Π₂ᵖ-complete).
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (bool, error) {
	return s.inner.InferFormula(d, f)
}

// HasModel decides MM(DB) ≠ ∅ ⟺ DB satisfiable.
func (s *Sem) HasModel(d *db.DB) (bool, error) { return s.inner.HasModel(d) }

// Models enumerates the minimal models MM(DB).
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (int, error) {
	return s.inner.Models(d, limit, yield)
}

// ModelsPar enumerates MM(DB) with the region-decomposed worker-pool
// search (Engine.MinimalModelsPar) instead of the inner ECWA
// filter-all-models route — under full minimisation the minimal models
// ARE their signatures, so the set is identical while the search only
// ever visits minimal territory. Yield order is nondeterministic.
func (s *Sem) ModelsPar(d *db.DB, limit int, yield func(logic.Interp) bool, opt models.ParOptions) (count int, err error) {
	defer budget.Recover(&err)
	eng := models.NewEngine(d, s.Oracle())
	eng.MinimalModelsPar(limit, func(m logic.Interp) bool {
		count++
		return yield(m)
	}, opt)
	return count, nil
}

// CheckModel reports whether m is a minimal model of d.
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (bool, error) {
	return s.inner.CheckModel(d, m)
}
