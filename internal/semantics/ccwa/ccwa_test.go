package ccwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/refsem"
)

// mkPartition builds a models.Partition plus the map form used by the
// reference implementation.
func mkPartition(rng *rand.Rand, n int) (models.Partition, map[int]bool, map[int]bool) {
	p, q := map[int]bool{}, map[int]bool{}
	var ps, zs []logic.Atom
	for v := 0; v < n; v++ {
		switch rng.Intn(3) {
		case 0:
			p[v] = true
			ps = append(ps, logic.Atom(v))
		case 1:
			q[v] = true
		default:
			zs = append(zs, logic.Atom(v))
		}
	}
	return models.NewPartition(n, ps, zs), p, q
}

func newSem(part *models.Partition) *Sem {
	return New(core.Options{Partition: part})
}

func TestRegistered(t *testing.T) {
	if _, ok := core.New("CCWA", core.Options{}); !ok {
		t.Fatalf("CCWA not registered")
	}
}

func TestPaperPartitionExample(t *testing.T) {
	// §2 of the paper: DB = {a∨b; a∨c ← b; c ← a∧b (—adapted—)} is not
	// given in full; instead use its explicit partition example:
	// V = {a,b,c}, P = {a}, Q = {b}, Z = {c} over DB = {a ∨ b}.
	// MM(DB;P;Z) per the paper: {b},{b,c},{a},{a,c}.
	d := dbtest.MustParse("a | b.")
	d.Voc.Intern("c")
	a, _ := d.Voc.Lookup("a")
	c, _ := d.Voc.Lookup("c")
	part := models.NewPartition(3, []logic.Atom{a}, []logic.Atom{c})
	eng := models.NewEngine(d, nil)
	var got []logic.Interp
	eng.EnumerateModels(0, func(m logic.Interp) bool {
		if eng.IsMinimalPZ(m, part) {
			got = append(got, m.Clone())
		}
		return true
	})
	want := map[string]bool{"{b}": true, "{b, c}": true, "{a}": true, "{a, c}": true}
	if len(got) != 4 {
		t.Fatalf("MM(DB;P;Z) size = %d, want 4", len(got))
	}
	for _, m := range got {
		if !want[m.String(d.Voc)] {
			t.Fatalf("unexpected (P;Z)-minimal model %s", m.String(d.Voc))
		}
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		part, p, q := mkPartition(rng, n)
		s := newSem(&part)
		want := refsem.CCWA(d, p, q)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: CCWA model set mismatch\nDB:\n%sP=%v Q=%v\nwant %d got %d",
				iter, d.String(), p, q, len(want), len(got))
		}
	}
}

func TestInferLiteralMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		part, p, q := mkPartition(rng, n)
		s := newSem(&part)
		set := refsem.CCWA(d, p, q)
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(set, logic.LitF(l))
			got, err := s.InferLiteral(d, l)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("iter %d: InferLiteral(%s)=%v want %v\nDB:\n%sP=%v Q=%v",
					iter, d.Voc.LitString(l), got, want, d.String(), p, q)
			}
		}
	}
}

func TestInferFormulaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
		part, p, q := mkPartition(rng, n)
		s := newSem(&part)
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(refsem.CCWA(d, p, q), f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: InferFormula=%v want %v\nDB:\n%sF: %s P=%v Q=%v",
				iter, got, want, d.String(), f.String(d.Voc), p, q)
		}
	}
}

func TestDeltaLogAgreesWithDirectUnderPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(3)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
		part, _, _ := mkPartition(rng, n)
		s := newSem(&part)
		f := randomFormula(rng, n, 2)
		direct, _ := s.InferFormula(d, f)
		dlog, err := s.InferFormulaDeltaLog(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if direct != dlog {
			t.Fatalf("iter %d: Δ-log=%v direct=%v\nDB:\n%sF: %s",
				iter, dlog, direct, d.String(), f.String(d.Voc))
		}
	}
}

func TestCCWAWithFullPartitionIsGCWA(t *testing.T) {
	// "GCWA coincides with CCWA for Q = Z = ∅."
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		s := newSem(nil) // defaults to P = V
		var got []logic.Interp
		s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		})
		if !refsem.SameModelSet(refsem.GCWA(d), got) {
			t.Fatalf("iter %d: CCWA(P=V) ≠ GCWA\nDB:\n%s", iter, d.String())
		}
	}
}

func TestHasModel(t *testing.T) {
	s := newSem(nil)
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. c :- b.")); !ok {
		t.Fatalf("want model")
	}
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. :- a. :- b.")); ok {
		t.Fatalf("want no model")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
