package ccwa

// The P^Σ₂ᵖ[O(log n)] formula-inference algorithm (the upper bound of
// the GCWA/CCWA "Inference of formula" cells; the paper sketches the
// method and cites Eiter–Gottlob [7] for it):
//
//  1. Let PT = {x ∈ P : some (P;Z)-minimal model contains x}; then the
//     CCWA closure negates exactly N = P ∖ PT. The size t = |PT| is
//     found by binary search using the Σ₂ᵖ query
//
//         Query(j) ≡ ∃ minimal models M1,…,Mj and j distinct atoms
//                    xi ∈ Mi ∩ P
//
//     (equivalently |PT| ≥ j), taking ⌈log₂(|P|+1)⌉ oracle calls.
//
//  2. One final Σ₂ᵖ query decides non-inference: with t known, any
//     tuple of minimal models covering t distinct P-atoms covers
//     exactly PT, so
//
//         ¬(CCWA(DB) ⊨ F) ≡ ∃ minimal M1,…,Mt covering t distinct
//              P-atoms, and a model M of DB with M∩P ⊆ ⋃ᵢ(Mᵢ∩P)
//              and M ⊭ F.
//
// Each Σ₂ᵖ query is answered by a CEGAR sub-solver (SAT proposes the
// model tuple, SAT verifies minimality of each component, refuted
// candidates are blocked by superset cones) and is counted as one
// Σ₂ᵖ-oracle call on the instrumented oracle — the audit benchmark
// checks Sigma2Calls ∈ O(log |P|).

import (
	"strconv"

	"disjunct/internal/budget"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
)

// InferFormulaDeltaLog decides CCWA(DB) ⊨ f with O(log |P|) Σ₂ᵖ oracle
// calls. It returns the same verdict as InferFormula (the benchmark
// suite cross-checks them).
func (s *Sem) InferFormulaDeltaLog(d *db.DB, f *logic.Formula) (ok bool, err error) {
	defer budget.Recover(&err)
	part := s.opts.PartitionFor(d)
	q := &deltaLogSolver{sem: s, d: d, part: part}
	nP := part.P.Count()

	// Binary search for t = |PT| in [0, |P|]; Query(0) is trivially
	// true when DB is satisfiable — and when DB is unsatisfiable the
	// final query is unsatisfiable too, entailing everything, so the
	// search needs no special casing.
	lo, hi := 0, nP
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if q.query(mid, nil) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	t := lo
	// Final query: counterexample search.
	return !q.query(t, f), nil
}

// deltaLogSolver answers the Σ₂ᵖ queries by CEGAR.
type deltaLogSolver struct {
	sem  *Sem
	d    *db.DB
	part models.Partition
}

// query decides, as one Σ₂ᵖ oracle call:
//
//	counterF == nil: "∃ j minimal models covering ≥ j distinct P-atoms"
//	counterF != nil: the same plus "∃ model M of DB with M∩P ⊆ cover
//	                 and M ⊭ counterF".
func (q *deltaLogSolver) query(j int, counterF *logic.Formula) bool {
	q.sem.opts.Oracle.CountSigma2()
	d, part := q.d, q.part
	n := d.N()
	base := d.ToCNF()

	// Outer vocabulary: j model copies + (optionally) the counter-
	// example copy + union vars u_x for x ∈ P.
	voc := logic.NewVocabulary()
	copies := j
	extraM := 0
	if counterF != nil {
		extraM = 1
	}
	// copyAtom(c, a) = atom of copy c (0..copies-1), counterexample
	// copy has index copies.
	for c := 0; c < copies+extraM; c++ {
		for v := 0; v < n; v++ {
			voc.Intern(copyName(c, d.Voc.Name(logic.Atom(v))))
		}
	}
	copyAtom := func(c, v int) logic.Atom { return logic.Atom(c*n + v) }
	uAtoms := make(map[int]logic.Atom) // P-atom index -> union var
	var pIdx []int
	part.P.ForEach(func(v int) { pIdx = append(pIdx, v) })
	for _, v := range pIdx {
		uAtoms[v] = voc.Intern(unionName(d.Voc.Name(logic.Atom(v))))
	}

	var outer logic.CNF
	shift := func(cnf logic.CNF, c int) logic.CNF {
		out := make(logic.CNF, len(cnf))
		for i, cl := range cnf {
			ncl := make(logic.Clause, len(cl))
			for k, l := range cl {
				ncl[k] = logic.MkLit(copyAtom(c, int(l.Atom())), l.IsPos())
			}
			out[i] = ncl
		}
		return out
	}
	for c := 0; c < copies+extraM; c++ {
		outer = append(outer, shift(base, c)...)
	}
	// u_x ↔ ∨_c copy_c(x): we only need u_x → ∨ copies (at-least side
	// is what the cardinality constraint pushes on).
	for _, v := range pIdx {
		cl := logic.Clause{logic.NegLit(uAtoms[v])}
		for c := 0; c < copies; c++ {
			cl = append(cl, logic.PosLit(copyAtom(c, v)))
		}
		outer = append(outer, cl)
	}
	// At least j union vars true.
	uLits := make([]logic.Lit, 0, len(pIdx))
	for _, v := range pIdx {
		uLits = append(uLits, logic.PosLit(uAtoms[v]))
	}
	outer = append(outer, logic.AtLeastK(uLits, j, voc)...)

	if counterF != nil {
		// Counterexample copy: M∩P ⊆ ⋃(Mi∩P): M_x → ∨_c copy_c(x).
		for _, v := range pIdx {
			cl := logic.Clause{logic.NegLit(copyAtom(copies, v))}
			for c := 0; c < copies; c++ {
				cl = append(cl, logic.PosLit(copyAtom(c, v)))
			}
			outer = append(outer, cl)
		}
		// ¬F over the counterexample copy.
		shifted := shiftFormula(counterF, func(a logic.Atom) logic.Atom {
			return copyAtom(copies, int(a))
		})
		outer = append(outer, logic.TseitinNeg(shifted, voc)...)
	}

	eng := models.NewEngine(d, q.sem.opts.Oracle)
	// CEGAR loop.
	for {
		sat, m := q.sem.opts.Oracle.Sat(voc.Size(), outer)
		if !sat {
			return false
		}
		allMinimal := true
		for c := 0; c < copies; c++ {
			// Extract copy c.
			mc := logic.NewInterp(n)
			for v := 0; v < n; v++ {
				mc.True.SetTo(v, m.Holds(copyAtom(c, v)))
			}
			if eng.IsMinimalPZ(mc, part) {
				continue
			}
			allMinimal = false
			// Refine: models with P-part ⊇ mc∩P and equal Q-part are
			// non-minimal in every copy.
			for cc := 0; cc < copies; cc++ {
				var block logic.Clause
				for v := 0; v < n; v++ {
					a := copyAtom(cc, v)
					switch {
					case part.P.Test(v):
						if mc.Holds(logic.Atom(v)) {
							block = append(block, logic.NegLit(a))
						}
					case part.Q.Test(v):
						if mc.Holds(logic.Atom(v)) {
							block = append(block, logic.NegLit(a))
						} else {
							block = append(block, logic.PosLit(a))
						}
					}
				}
				outer = append(outer, block)
			}
		}
		if allMinimal {
			return true
		}
	}
}

func copyName(c int, name string) string {
	return "c" + strconv.Itoa(c) + "$" + name
}

func unionName(name string) string { return "u$" + name }

// shiftFormula renames the atoms of f.
func shiftFormula(f *logic.Formula, ren func(logic.Atom) logic.Atom) *logic.Formula {
	switch f.Op {
	case logic.OpAtom:
		return logic.AtomF(ren(f.A))
	case logic.OpTrue, logic.OpFalse:
		return f
	case logic.OpNot:
		return logic.Not(shiftFormula(f.Args[0], ren))
	default:
		args := make([]*logic.Formula, len(f.Args))
		for i, g := range f.Args {
			args[i] = shiftFormula(g, ren)
		}
		switch f.Op {
		case logic.OpAnd:
			return logic.And(args...)
		case logic.OpOr:
			return logic.Or(args...)
		case logic.OpImpl:
			return logic.Implies(args[0], args[1])
		case logic.OpEquiv:
			return logic.Equiv(args[0], args[1])
		}
	}
	panic("ccwa: unknown formula op")
}
