package ccwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/semtest"
)

// TestCachedOracleCrossCheck: CCWA (default full-minimisation
// partition) with the oracle verdict cache must match CCWA without it
// — verdicts, model sets, NP-call totals. The Models path drives an
// incremental solver, so this also covers the bypass-as-miss
// accounting.
func TestCachedOracleCrossCheck(t *testing.T) {
	semtest.CrossCheckCached(t, "CCWA", 30, func(iter int, rng *rand.Rand) *db.DB {
		if iter%2 == 0 {
			return gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(7)))
		}
		return gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
	})
}
