// Package ccwa implements the Careful Closed World Assumption of
// Gelfond and Przymusinska (§3.1 of the paper):
//
//	CCWA(DB) = {M ∈ M(DB) : ∀x ∈ P. MM(DB;P;Z) ⊨ ¬x ⇒ M ⊨ ¬x}
//
// for a partition ⟨P;Q;Z⟩ of the vocabulary. For Q = Z = ∅ (the
// default when no partition is configured) CCWA coincides with GCWA;
// package gcwa delegates here.
//
// Complexity shape (Tables 1 and 2): literal inference Π₂ᵖ-complete;
// formula inference Π₂ᵖ-hard and in P^Σ₂ᵖ[O(log n)]; model existence
// trivial for positive DDBs and NP-complete with integrity clauses.
// The Δ-log upper bound is realised by InferFormulaDeltaLog, which
// performs binary search with O(log |P|) Σ₂ᵖ-oracle calls (the method
// of Eiter–Gottlob [7] cited in the paper's proof sketch).
package ccwa

import (
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/par"
)

func init() {
	core.Register("CCWA", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	core.Describe(core.Info{
		Name:       "CCWA",
		Complexity: "literal Πᵖ₂-complete; formula Πᵖ₂-hard, in P^Σᵖ₂[O(log n)]; existence O(1) positive / NP with IC",
		Cells:      core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellNP},
	})
}

// Sem is the CCWA semantics.
type Sem struct {
	opts core.Options
}

// New returns a CCWA instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts}
}

// Name returns "CCWA".
func (s *Sem) Name() string { return "CCWA" }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

// engine builds a model engine for d.
func (s *Sem) engine(d *db.DB) (*models.Engine, models.Partition) {
	return models.NewEngine(d, s.opts.Oracle), s.opts.PartitionFor(d)
}

// NegatedAtoms computes the CCWA closure literals: the set
// N = {x ∈ P : MM(DB;P;Z) ⊨ ¬x}. Each atom costs one minimal-model
// entailment query.
func (s *Sem) NegatedAtoms(d *db.DB) []logic.Atom {
	eng, part := s.engine(d)
	var out []logic.Atom
	for v := 0; v < d.N(); v++ {
		if !part.P.Test(v) {
			continue
		}
		if eng.AtomFalseInAllMinimal(logic.Atom(v), part) {
			out = append(out, logic.Atom(v))
		}
	}
	return out
}

// NegatedAtomsPar is NegatedAtoms with the per-atom minimal-model
// entailment queries fanned out across a worker pool. Each atom's
// co-search is independent of the others, so the oracle-call total
// equals the serial method's exactly, for any worker count; the
// returned atoms are in ascending order either way.
func (s *Sem) NegatedAtomsPar(d *db.DB, opt models.ParOptions) []logic.Atom {
	eng, part := s.engine(d)
	atoms := part.P.Elements()
	falsified := par.MapBool(opt.Workers, len(atoms), func(i int) bool {
		return eng.AtomFalseInAllMinimal(logic.Atom(atoms[i]), part)
	})
	var out []logic.Atom
	for i, f := range falsified {
		if f {
			out = append(out, logic.Atom(atoms[i]))
		}
	}
	return out
}

// closureCNF returns the CNF of DB ∪ {¬x : x ∈ N}, whose classical
// models are exactly CCWA(DB).
func (s *Sem) closureCNF(d *db.DB) logic.CNF {
	cnf := d.ToCNF()
	for _, a := range s.NegatedAtoms(d) {
		cnf = append(cnf, logic.Clause{logic.NegLit(a)})
	}
	return cnf
}

// InferLiteral decides CCWA(DB) ⊨ l.
//
// Negative literal ¬x with x ∈ P: equivalent to MM(DB;P;Z) ⊨ ¬x
// (every minimal model is a CCWA model, and the closure adds exactly
// the negations holding in all minimal models) — the Π₂ᵖ-complete
// core, decided by one minimal-model entailment co-search.
// Other literals: classical entailment from the closure.
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (ok bool, err error) {
	defer budget.Recover(&err)
	eng, part := s.engine(d)
	if !l.IsPos() && part.P.Test(int(l.Atom())) {
		// CCWA ⊨ ¬x ⟺ MM(DB;P;Z) ⊨ ¬x, provided DB is consistent;
		// an inconsistent DB entails everything.
		if ok, _ := eng.HasModel(); !ok {
			return true, nil
		}
		return eng.AtomFalseInAllMinimal(l.Atom(), part), nil
	}
	return s.InferFormula(d, logic.LitF(l))
}

// InferFormula decides CCWA(DB) ⊨ f by computing the closure and one
// classical entailment check.
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (ok bool, err error) {
	defer budget.Recover(&err)
	cnf := s.closureCNF(d)
	return s.opts.Oracle.Entails(d.N(), cnf, f, d.Voc), nil
}

// HasModel decides CCWA(DB) ≠ ∅. Since every (P;Z)-minimal model of a
// consistent DB satisfies the closure, this is exactly classical
// satisfiability: O(1) — constantly true, zero oracle calls — on
// positive DDBs without integrity clauses (Table 1), one NP call
// otherwise (the NP-complete cell of Table 2).
func (s *Sem) HasModel(d *db.DB) (ok bool, err error) {
	defer budget.Recover(&err)
	if !d.HasNegation() && !d.HasIntegrityClauses() {
		return true, nil // the all-true interpretation is a model
	}
	eng, _ := s.engine(d)
	ok, _ = eng.HasModel()
	return ok, nil
}

// Models enumerates CCWA(DB) — the classical models of the closure.
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	cnf := s.closureCNF(d)
	n := d.N()
	solver := s.opts.Oracle.SatSolver(n, cnf)
	solver.EnumerateModels(n, limit, func(model []bool) bool {
		s.opts.Oracle.CountCall()
		m := logic.NewInterp(n)
		for v := 0; v < n; v++ {
			m.True.SetTo(v, model[v])
		}
		count++
		return yield(m)
	})
	oracle.CheckEnumerate(solver)
	return count, nil
}

// CheckModel reports whether m ∈ CCWA(DB): m must be a model of DB and
// avoid every atom of the CCWA closure. (Model checking is the
// verifier inside the Π₂ᵖ membership arguments; here each closure atom
// costs one minimal-model entailment query, and only atoms true in m
// need checking.)
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (ok bool, err error) {
	defer budget.Recover(&err)
	if !d.Sat(m) {
		return false, nil
	}
	eng, part := s.engine(d)
	for v := 0; v < d.N(); v++ {
		if !part.P.Test(v) || !m.Holds(logic.Atom(v)) {
			continue
		}
		// x ∈ M∩P must be possibly true in some (P;Z)-minimal model.
		if eng.AtomFalseInAllMinimal(logic.Atom(v), part) {
			return false, nil
		}
	}
	return true, nil
}
