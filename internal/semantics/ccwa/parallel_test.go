package ccwa

import (
	"math/rand"
	"reflect"
	"testing"

	"disjunct/internal/gen"
	"disjunct/internal/models"
)

func TestNegatedAtomsParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 25; iter++ {
		n := 4 + rng.Intn(5)
		d := gen.Random(rng, gen.WithIntegrity(n, 2+rng.Intn(10)))
		part, _, _ := mkPartition(rng, n)
		ser := newSem(&part)
		want := ser.NegatedAtoms(d)
		wantC := ser.Oracle().Counters()
		for _, w := range []int{1, 4, 0} {
			s := newSem(&part)
			got := s.NegatedAtomsPar(d, models.ParOptions{Workers: w})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d workers=%d: par %v, serial %v\nDB:\n%s", iter, w, got, want, d.String())
			}
			if c := s.Oracle().Counters(); c != wantC {
				t.Fatalf("iter %d workers=%d: counters %+v, serial %+v", iter, w, c, wantC)
			}
		}
	}
}
