// Package ecwa implements the Extended Closed World Assumption of
// Gelfond, Przymusinska, and Przymusinski (§3.3), which in the finite
// propositional case coincides with Lifschitz's circumscription CIRC:
//
//	ECWA_{P;Z}(DB) = MM(DB;P;Z) = CIRC_{P;Z}(DB)
//
// Inference is truth in every (P;Z)-minimal model.
//
// Complexity shape: literal and formula inference Π₂ᵖ-complete (the
// formula column is complete here, unlike GCWA/CCWA — Theorems 3.6,
// 3.7); model existence is classical satisfiability (NP-complete with
// integrity clauses, trivial without).
package ecwa

import (
	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
)

func init() {
	core.Register("ECWA", func(opts core.Options) core.Semantics {
		return New(opts)
	})
	// CIRC is the same semantics under its circumscription name.
	core.Register("CIRC", func(opts core.Options) core.Semantics {
		s := New(opts)
		s.name = "CIRC"
		return s
	})
	ecwaCell := "literal/formula Πᵖ₂-complete; existence O(1) positive / NP with IC"
	ecwaCells := core.Cells{Literal: core.CellPi2, Formula: core.CellPi2, Existence: core.CellNP}
	core.Describe(core.Info{Name: "ECWA", Complexity: ecwaCell, Cells: ecwaCells})
	core.Describe(core.Info{Name: "CIRC", Complexity: ecwaCell, Cells: ecwaCells})
}

// Sem is the ECWA ≡ CIRC semantics.
type Sem struct {
	opts core.Options
	name string
}

// New returns an ECWA instance.
func New(opts core.Options) *Sem {
	opts.OracleFor()
	return &Sem{opts: opts, name: "ECWA"}
}

// Name returns "ECWA" (or "CIRC" when instantiated under that name).
func (s *Sem) Name() string { return s.name }

// Oracle exposes the instrumented oracle.
func (s *Sem) Oracle() *oracle.NP { return s.opts.Oracle }

// InferLiteral decides ECWA(DB) ⊨ l: truth of l in all (P;Z)-minimal
// models. Π₂ᵖ-complete even for positive DDBs (Theorem 3.6).
func (s *Sem) InferLiteral(d *db.DB, l logic.Lit) (bool, error) {
	return s.InferFormula(d, logic.LitF(l))
}

// InferFormula decides MM(DB;P;Z) ⊨ f via the minimal-model
// entailment co-search (Π₂ᵖ membership, Theorem 3.7: a guessed
// countermodel is verified minimal with one NP-oracle call).
func (s *Sem) InferFormula(d *db.DB, f *logic.Formula) (ok bool, err error) {
	defer budget.Recover(&err)
	eng := models.NewEngine(d, s.opts.Oracle)
	return eng.MMEntails(f, s.opts.PartitionFor(d)), nil
}

// HasModel decides MM(DB;P;Z) ≠ ∅ ⟺ DB satisfiable (every model of a
// finite propositional DB sits above some (P;Z)-minimal one): O(1) on
// positive DDBs without integrity clauses, one NP call otherwise.
func (s *Sem) HasModel(d *db.DB) (ok bool, err error) {
	defer budget.Recover(&err)
	if !d.HasNegation() && !d.HasIntegrityClauses() {
		return true, nil // the all-true interpretation is a model
	}
	eng := models.NewEngine(d, s.opts.Oracle)
	ok, _ = eng.HasModel()
	return ok, nil
}

// Models enumerates MM(DB;P;Z) exactly — including Z-variants — by
// enumerating all models and filtering by the one-NP-call minimality
// check. Exponential in general; intended for small databases.
func (s *Sem) Models(d *db.DB, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	eng := models.NewEngine(d, s.opts.Oracle)
	part := s.opts.PartitionFor(d)
	eng.EnumerateModels(0, func(m logic.Interp) bool {
		if !eng.IsMinimalPZ(m, part) {
			return true
		}
		count++
		if !yield(m) {
			return false
		}
		return limit <= 0 || count < limit
	})
	return count, nil
}

// ModelsPar is Models with the model search decomposed into static
// cubes across a worker pool (Engine.EnumerateModelsPar); each
// candidate still pays its one-NP-call minimality check, applied under
// the emitter lock so yields never run concurrently. The model set
// matches Models exactly and — since every model is checked exactly
// once — the oracle-call total is worker-count-invariant when
// limit ≤ 0. Yield order is nondeterministic.
func (s *Sem) ModelsPar(d *db.DB, limit int, yield func(logic.Interp) bool, opt models.ParOptions) (count int, err error) {
	defer budget.Recover(&err)
	eng := models.NewEngine(d, s.opts.Oracle)
	part := s.opts.PartitionFor(d)
	eng.EnumerateModelsPar(0, func(m logic.Interp) bool {
		if !eng.IsMinimalPZ(m, part) {
			return true
		}
		count++
		if !yield(m) {
			return false
		}
		return limit <= 0 || count < limit
	}, opt)
	return count, nil
}

// CheckModel reports whether m ∈ MM(DB;P;Z): one model evaluation plus
// one NP-oracle (minimality) call — the verifier of Theorem 3.7.
func (s *Sem) CheckModel(d *db.DB, m logic.Interp) (ok bool, err error) {
	defer budget.Recover(&err)
	if !d.Sat(m) {
		return false, nil
	}
	eng := models.NewEngine(d, s.opts.Oracle)
	return eng.IsMinimalPZ(m, s.opts.PartitionFor(d)), nil
}

// InferFormulaWitness is InferFormula returning, on failure, a
// concrete (P;Z)-minimal countermodel — the "minimal world" in which
// the query is false.
func (s *Sem) InferFormulaWitness(d *db.DB, f *logic.Formula) (ok bool, w logic.Interp, err error) {
	defer budget.Recover(&err)
	eng := models.NewEngine(d, s.opts.Oracle)
	ok, w = eng.MMEntailsWitness(f, s.opts.PartitionFor(d))
	return ok, w, nil
}
