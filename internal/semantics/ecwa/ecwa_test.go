package ecwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/refsem"
)

func mkPartition(rng *rand.Rand, n int) (models.Partition, map[int]bool, map[int]bool) {
	p, q := map[int]bool{}, map[int]bool{}
	var ps, zs []logic.Atom
	for v := 0; v < n; v++ {
		switch rng.Intn(3) {
		case 0:
			p[v] = true
			ps = append(ps, logic.Atom(v))
		case 1:
			q[v] = true
		default:
			zs = append(zs, logic.Atom(v))
		}
	}
	return models.NewPartition(n, ps, zs), p, q
}

func TestRegisteredBothNames(t *testing.T) {
	e, ok1 := core.New("ECWA", core.Options{})
	c, ok2 := core.New("CIRC", core.Options{})
	if !ok1 || !ok2 {
		t.Fatalf("ECWA/CIRC not registered")
	}
	if e.Name() != "ECWA" || c.Name() != "CIRC" {
		t.Fatalf("names wrong: %s %s", e.Name(), c.Name())
	}
}

func TestECWAEqualsCIRC(t *testing.T) {
	// CIRC_{P;Z}(DB) = MM(DB;P;Z) = ECWA_{P;Z}(DB) in the finite
	// propositional case (paper §3.3): the two registered semantics
	// must agree on everything.
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		part, _, _ := mkPartition(rng, n)
		e := New(core.Options{Partition: &part})
		c, _ := core.New("CIRC", core.Options{Partition: &part})
		f := randomFormula(rng, n, 2)
		ge, _ := e.InferFormula(d, f)
		gc, _ := c.InferFormula(d, f)
		if ge != gc {
			t.Fatalf("iter %d: ECWA=%v CIRC=%v", iter, ge, gc)
		}
	}
}

func TestModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		part, p, q := mkPartition(rng, n)
		s := New(core.Options{Partition: &part})
		want := refsem.ECWA(d, p, q)
		var got []logic.Interp
		if _, err := s.Models(d, 0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: ECWA model set mismatch\nDB:\n%sP=%v Q=%v want %d got %d",
				iter, d.String(), p, q, len(want), len(got))
		}
	}
}

func TestInferFormulaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		part, p, q := mkPartition(rng, n)
		s := New(core.Options{Partition: &part})
		f := randomFormula(rng, n, 3)
		want := refsem.Entails(refsem.ECWA(d, p, q), f)
		got, err := s.InferFormula(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: ECWA InferFormula=%v want %v\nDB:\n%sF: %s P=%v Q=%v",
				iter, got, want, d.String(), f.String(d.Voc), p, q)
		}
	}
}

func TestLiteralInference(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		part, p, q := mkPartition(rng, n)
		s := New(core.Options{Partition: &part})
		a := logic.Atom(rng.Intn(n))
		for _, l := range []logic.Lit{logic.PosLit(a), logic.NegLit(a)} {
			want := refsem.Entails(refsem.ECWA(d, p, q), logic.LitF(l))
			got, _ := s.InferLiteral(d, l)
			if got != want {
				t.Fatalf("iter %d: lit %s got %v want %v\nDB:\n%s",
					iter, d.Voc.LitString(l), got, want, d.String())
			}
		}
	}
}

func TestHasModelIsSatisfiability(t *testing.T) {
	s := New(core.Options{})
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. :- a.")); !ok {
		t.Fatalf("satisfiable DB must have an ECWA model")
	}
	if ok, _ := s.HasModel(dbtest.MustParse("a | b. :- a. :- b.")); ok {
		t.Fatalf("unsatisfiable DB must have no ECWA model")
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(3) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	default:
		return logic.Implies(l, r)
	}
}
