package ecwa

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
)

func modelKeys(collect func(yield func(logic.Interp) bool)) map[string]bool {
	out := map[string]bool{}
	collect(func(m logic.Interp) bool {
		out[m.Key()] = true
		return true
	})
	return out
}

func TestModelsParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for iter := 0; iter < 25; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(3+rng.Intn(4), 1+rng.Intn(8)))
		s := New(core.Options{})
		want := modelKeys(func(y func(logic.Interp) bool) { s.Models(d, 0, y) })
		for _, w := range []int{1, 4, 0} {
			got := modelKeys(func(y func(logic.Interp) bool) {
				s.ModelsPar(d, 0, y, models.ParOptions{Workers: w})
			})
			if len(got) != len(want) {
				t.Fatalf("iter %d workers=%d: %d models, serial %d\nDB:\n%s", iter, w, len(got), len(want), d.String())
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("iter %d workers=%d: model %q missing", iter, w, k)
				}
			}
		}
	}
}
