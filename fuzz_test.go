package disjunct_test

// Native fuzz targets (run with `go test -fuzz=FuzzX`; the seed corpus
// alone runs under plain `go test`, acting as additional regression
// input). Every parser must reject or accept without panicking, and
// accepted inputs must survive a render→parse round trip.

import (
	"strings"
	"testing"

	"disjunct"
)

func FuzzParseDB(f *testing.F) {
	for _, seed := range []string{
		"a | b.",
		"c :- a, b.",
		"d :- c, not e.",
		":- a, d.",
		"a|b.c:-a.",
		"% comment\na.",
		"a :- not not b.",
		"π :- ünïcode.",
		strings.Repeat("a | ", 100) + "b.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := disjunct.Parse(input)
		if err != nil {
			return
		}
		// Round trip: the rendering must re-parse.
		d2, err := disjunct.Parse(d.String())
		if err != nil {
			t.Fatalf("render of %q does not re-parse: %v", input, err)
		}
		if len(d2.Clauses) != len(d.Clauses) {
			t.Fatalf("round trip changed clause count for %q", input)
		}
	})
}

func FuzzParseFormula(f *testing.F) {
	for _, seed := range []string{
		"a & b | -c",
		"(a -> b) <-> -c",
		"edge(a,b) & -path(b,c)",
		"true | false",
		"----a",
		"a & (b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		voc := disjunct.NewDB().Voc
		g, err := disjunct.ParseFormula(input, voc)
		if err != nil {
			return
		}
		if _, err := disjunct.ParseFormula(g.String(voc), voc); err != nil {
			t.Fatalf("render of %q does not re-parse: %v", input, err)
		}
	})
}

func FuzzParseProgram(f *testing.F) {
	for _, seed := range []string{
		"edge(a,b). path(X,Y) :- edge(X,Y).",
		"p(X) | q(X) :- r(X). r(a).",
		"w :- not w.",
		"p(X) :- q(X, X).",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 2000 {
			return // keep grounding cost bounded
		}
		d, err := disjunct.ParseProgram(input)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("grounding of %q produced invalid DB: %v", input, err)
		}
	})
}
