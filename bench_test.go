// Benchmarks regenerating the paper's evaluation as testing.B targets:
// one benchmark family per cell of Tables 1 and 2 (semantics × task ×
// regime), plus the ablation benches called out in DESIGN.md §8.
// The ddbbench command produces the full annotated report; these
// targets give the standard `go test -bench` view of the same cells.
package disjunct

import (
	"fmt"
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/qbf"
	"disjunct/internal/reduction"
	"disjunct/internal/sat"
)

func newEngine(d *db.DB) *models.Engine { return models.NewEngine(d, nil) }

// mkSem builds a registered semantics or fails the benchmark.
func mkSem(b *testing.B, name string) Semantics {
	b.Helper()
	s, ok := NewSemantics(name, Options{})
	if !ok {
		b.Fatalf("unknown semantics %s", name)
	}
	return s
}

// qbfLitInstances pre-builds Theorem 3.1 reduction instances.
func qbfLitInstances(b *testing.B, size, count int) []struct {
	d *db.DB
	l Lit
} {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(size)))
	out := make([]struct {
		d *db.DB
		l Lit
	}, count)
	for i := range out {
		q := qbf.Random3DNF(rng, size, size, 2*size)
		d, w, err := reduction.MMNegLiteralFromQBF(q)
		if err != nil {
			b.Fatal(err)
		}
		out[i].d = d
		out[i].l = NegLit(w)
	}
	return out
}

// benchLiteralQBF drives a Π₂ᵖ literal-inference cell on the QBF
// reduction family.
func benchLiteralQBF(b *testing.B, sem string, sizes []int) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("qbfsize=%d", size), func(b *testing.B) {
			s := mkSem(b, sem)
			insts := qbfLitInstances(b, size, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst := insts[i%len(insts)]
				if _, err := s.InferLiteral(inst.d, inst.l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchLiteralRandom drives a literal-inference cell on random DBs.
func benchLiteralRandom(b *testing.B, sem string, sizes []int, mk func(*rand.Rand, int) *db.DB) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			s := mkSem(b, sem)
			rng := rand.New(rand.NewSource(int64(size)))
			dbs := make([]*db.DB, 8)
			for i := range dbs {
				dbs[i] = mk(rng, size)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := dbs[i%len(dbs)]
				l := NegLit(Atom(i % d.N()))
				if _, err := s.InferLiteral(d, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchFormulaRandom(b *testing.B, sem string, sizes []int, mk func(*rand.Rand, int) *db.DB) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			s := mkSem(b, sem)
			rng := rand.New(rand.NewSource(int64(size)))
			type inst struct {
				d *db.DB
				f *Formula
			}
			insts := make([]inst, 8)
			for i := range insts {
				d := mk(rng, size)
				insts[i] = inst{d, randomBenchFormula(rng, d.N())}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in := insts[i%len(insts)]
				if _, err := s.InferFormula(in.d, in.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchExists(b *testing.B, sem string, sizes []int, mk func(*rand.Rand, int) *db.DB) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			s := mkSem(b, sem)
			rng := rand.New(rand.NewSource(int64(size)))
			dbs := make([]*db.DB, 8)
			for i := range dbs {
				dbs[i] = mk(rng, size)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.HasModel(dbs[i%len(dbs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func randomBenchFormula(rng *rand.Rand, n int) *Formula {
	var rec func(depth int) *Formula
	rec = func(depth int) *Formula {
		if depth == 0 || rng.Intn(3) == 0 {
			a := Atom(rng.Intn(n))
			if rng.Intn(2) == 0 {
				return logic.Not(logic.AtomF(a))
			}
			return logic.AtomF(a)
		}
		l, r := rec(depth-1), rec(depth-1)
		if rng.Intn(2) == 0 {
			return logic.And(l, r)
		}
		return logic.Or(l, r)
	}
	return rec(3)
}

func positiveDB(rng *rand.Rand, n int) *db.DB   { return gen.Random(rng, gen.Positive(n, 2*n)) }
func icDB(rng *rand.Rand, n int) *db.DB         { return gen.Random(rng, gen.WithIntegrity(n, 2*n)) }
func noICNegDB(rng *rand.Rand, n int) *db.DB    { return gen.Random(rng, gen.NormalNoIC(n, 2*n)) }
func stratifiedDB(rng *rand.Rand, n int) *db.DB { return gen.RandomStratified(rng, n, 2*n, 3) }

// ---------------------------------------------------------------------------
// Table 1, column "Inference of literal"
// ---------------------------------------------------------------------------

func BenchmarkTable1LiteralGCWA(b *testing.B)  { benchLiteralQBF(b, "GCWA", []int{2, 3}) }
func BenchmarkTable1LiteralEGCWA(b *testing.B) { benchLiteralQBF(b, "EGCWA", []int{2, 3}) }
func BenchmarkTable1LiteralECWA(b *testing.B)  { benchLiteralQBF(b, "ECWA", []int{2, 3}) }
func BenchmarkTable1LiteralCCWA(b *testing.B)  { benchLiteralQBF(b, "CCWA", []int{2, 3}) }
func BenchmarkTable1LiteralICWA(b *testing.B)  { benchLiteralQBF(b, "ICWA", []int{2, 3}) }
func BenchmarkTable1LiteralPERF(b *testing.B)  { benchLiteralQBF(b, "PERF", []int{2, 3}) }
func BenchmarkTable1LiteralDSM(b *testing.B)   { benchLiteralQBF(b, "DSM", []int{2, 3}) }
func BenchmarkTable1LiteralPDSM(b *testing.B)  { benchLiteralQBF(b, "PDSM", []int{1, 2}) }

// The two tractable cells: polynomial, zero oracle calls.
func BenchmarkTable1LiteralDDR(b *testing.B) {
	benchLiteralRandom(b, "DDR", []int{100, 400, 1600}, positiveDB)
}
func BenchmarkTable1LiteralPWS(b *testing.B) {
	benchLiteralRandom(b, "PWS", []int{100, 400, 1600}, positiveDB)
}

// ---------------------------------------------------------------------------
// Table 1, column "Inference of formula"
// ---------------------------------------------------------------------------

func BenchmarkTable1FormulaGCWADeltaLog(b *testing.B) {
	benchDeltaLog(b, "GCWA", []int{6, 10}, positiveDB)
}
func BenchmarkTable1FormulaCCWADeltaLog(b *testing.B) {
	benchDeltaLog(b, "CCWA", []int{6, 10}, positiveDB)
}

func benchDeltaLog(b *testing.B, sem string, sizes []int, mk func(*rand.Rand, int) *db.DB) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			s := mkSem(b, sem)
			dl, ok := s.(interface {
				InferFormulaDeltaLog(*db.DB, *Formula) (bool, error)
			})
			if !ok {
				b.Fatalf("%s lacks the Δ-log algorithm", sem)
			}
			rng := rand.New(rand.NewSource(int64(size)))
			d := mk(rng, size)
			f := randomBenchFormula(rng, d.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dl.InferFormulaDeltaLog(d, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1FormulaEGCWA(b *testing.B) {
	benchFormulaRandom(b, "EGCWA", []int{8, 16}, positiveDB)
}
func BenchmarkTable1FormulaECWA(b *testing.B) {
	benchFormulaRandom(b, "ECWA", []int{8, 16}, positiveDB)
}
func BenchmarkTable1FormulaICWA(b *testing.B) {
	benchFormulaRandom(b, "ICWA", []int{8, 16}, positiveDB)
}
func BenchmarkTable1FormulaPERF(b *testing.B) {
	benchFormulaRandom(b, "PERF", []int{8, 12}, positiveDB)
}
func BenchmarkTable1FormulaDSM(b *testing.B)  { benchFormulaRandom(b, "DSM", []int{8, 12}, positiveDB) }
func BenchmarkTable1FormulaPDSM(b *testing.B) { benchFormulaRandom(b, "PDSM", []int{4, 6}, positiveDB) }

// DDR/PWS formula inference: the coNP cells on the UNSAT family.
func BenchmarkTable1FormulaDDR(b *testing.B) { benchFormulaUNSAT(b, "DDR", []int{8, 16}) }
func BenchmarkTable1FormulaPWS(b *testing.B) { benchFormulaUNSAT(b, "PWS", []int{4, 6}) }

func benchFormulaUNSAT(b *testing.B, sem string, sizes []int) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("vars=%d", size), func(b *testing.B) {
			s := mkSem(b, sem)
			rng := rand.New(rand.NewSource(int64(size)))
			cnf := reduction.RandomCNF(rng, size, 4*size, 3)
			d, f := reduction.FormulaInferenceFromUNSAT(cnf, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.InferFormula(d, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 1, column "∃ model": O(1) for every semantics.
// ---------------------------------------------------------------------------

func BenchmarkTable1Exists(b *testing.B) {
	for _, sem := range []string{"GCWA", "DDR", "PWS", "EGCWA", "CCWA", "ECWA", "ICWA", "PERF", "DSM", "PDSM"} {
		b.Run(sem, func(b *testing.B) {
			s := mkSem(b, sem)
			rng := rand.New(rand.NewSource(1))
			d := positiveDB(rng, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := s.HasModel(d)
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 2, column "Inference of literal"
// ---------------------------------------------------------------------------

func BenchmarkTable2LiteralGCWA(b *testing.B)  { benchLiteralRandom(b, "GCWA", []int{8, 16}, icDB) }
func BenchmarkTable2LiteralEGCWA(b *testing.B) { benchLiteralRandom(b, "EGCWA", []int{8, 16}, icDB) }
func BenchmarkTable2LiteralECWA(b *testing.B)  { benchLiteralRandom(b, "ECWA", []int{8, 16}, icDB) }
func BenchmarkTable2LiteralCCWA(b *testing.B)  { benchLiteralRandom(b, "CCWA", []int{8, 16}, icDB) }
func BenchmarkTable2LiteralICWA(b *testing.B) {
	benchLiteralRandom(b, "ICWA", []int{8, 12}, stratifiedDB)
}
func BenchmarkTable2LiteralPERF(b *testing.B) { benchLiteralRandom(b, "PERF", []int{6, 9}, noICNegDB) }
func BenchmarkTable2LiteralDSM(b *testing.B)  { benchLiteralRandom(b, "DSM", []int{6, 9}, noICNegDB) }
func BenchmarkTable2LiteralPDSM(b *testing.B) { benchLiteralRandom(b, "PDSM", []int{4, 6}, noICNegDB) }

// Chan's coNP cells.
func BenchmarkTable2LiteralDDR(b *testing.B) { benchLiteralICReduction(b, "DDR", []int{8, 16}) }
func BenchmarkTable2LiteralPWS(b *testing.B) { benchLiteralICReduction(b, "PWS", []int{3, 5}) }

func benchLiteralICReduction(b *testing.B, sem string, sizes []int) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("vars=%d", size), func(b *testing.B) {
			s := mkSem(b, sem)
			rng := rand.New(rand.NewSource(int64(size)))
			cnf := reduction.RandomCNF(rng, size, 4*size, 3)
			d, w := reduction.LiteralInferenceFromUNSATWithICs(cnf, size)
			l := NegLit(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.InferLiteral(d, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 2, column "Inference of formula"
// ---------------------------------------------------------------------------

func BenchmarkTable2FormulaGCWADeltaLog(b *testing.B) { benchDeltaLog(b, "GCWA", []int{6, 10}, icDB) }
func BenchmarkTable2FormulaCCWADeltaLog(b *testing.B) { benchDeltaLog(b, "CCWA", []int{6, 10}, icDB) }
func BenchmarkTable2FormulaEGCWA(b *testing.B)        { benchFormulaRandom(b, "EGCWA", []int{8, 16}, icDB) }
func BenchmarkTable2FormulaECWA(b *testing.B)         { benchFormulaRandom(b, "ECWA", []int{8, 16}, icDB) }
func BenchmarkTable2FormulaICWA(b *testing.B) {
	benchFormulaRandom(b, "ICWA", []int{8, 12}, stratifiedDB)
}
func BenchmarkTable2FormulaPERF(b *testing.B) { benchFormulaRandom(b, "PERF", []int{6, 9}, noICNegDB) }
func BenchmarkTable2FormulaDSM(b *testing.B)  { benchFormulaRandom(b, "DSM", []int{6, 9}, noICNegDB) }
func BenchmarkTable2FormulaPDSM(b *testing.B) { benchFormulaRandom(b, "PDSM", []int{4, 6}, noICNegDB) }
func BenchmarkTable2FormulaDDR(b *testing.B)  { benchFormulaRandom(b, "DDR", []int{10, 20}, icDB) }
func BenchmarkTable2FormulaPWS(b *testing.B)  { benchFormulaRandom(b, "PWS", []int{4, 6}, icDB) }

// ---------------------------------------------------------------------------
// Table 2, column "∃ model"
// ---------------------------------------------------------------------------

// NP-complete cells on the SAT-reduction family.
func BenchmarkTable2ExistsNPCells(b *testing.B) {
	for _, sem := range []string{"GCWA", "EGCWA", "CCWA", "ECWA", "DDR"} {
		for _, size := range []int{10, 20} {
			b.Run(fmt.Sprintf("%s/vars=%d", sem, size), func(b *testing.B) {
				s := mkSem(b, sem)
				rng := rand.New(rand.NewSource(int64(size)))
				cnf := reduction.RandomCNF(rng, size, int(4.2*float64(size)), 3)
				d := reduction.ExistsModelFromSAT(cnf, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.HasModel(d); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTable2ExistsPWS(b *testing.B) {
	benchExists(b, "PWS", []int{3, 5}, func(rng *rand.Rand, n int) *db.DB {
		cnf := reduction.RandomCNF(rng, n, int(4.2*float64(n)), 3)
		return reduction.ExistsModelFromSAT(cnf, n)
	})
}

// ICWA: the O(1) cell.
func BenchmarkTable2ExistsICWA(b *testing.B) {
	benchExists(b, "ICWA", []int{50, 200}, stratifiedDB)
}

// DSM: the Σ₂ᵖ cell on the saturation reduction.
func BenchmarkTable2ExistsDSM(b *testing.B) {
	for _, size := range []int{2, 3} {
		b.Run(fmt.Sprintf("qbfsize=%d", size), func(b *testing.B) {
			s := mkSem(b, "DSM")
			rng := rand.New(rand.NewSource(int64(size)))
			q := qbf.Random3DNF(rng, size, size, 2*size)
			d, err := reduction.DSMExistsFromQBF(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.HasModel(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2ExistsPERF(b *testing.B) { benchExists(b, "PERF", []int{6, 9}, noICNegDB) }
func BenchmarkTable2ExistsPDSM(b *testing.B) { benchExists(b, "PDSM", []int{4, 6}, noICNegDB) }

// ---------------------------------------------------------------------------
// Proposition 5.4: UMINSAT
// ---------------------------------------------------------------------------

func BenchmarkUMINSAT(b *testing.B) {
	for _, size := range []int{8, 16} {
		b.Run(fmt.Sprintf("vars=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(size)))
			cnf := reduction.RandomCNF(rng, size, int(4.2*float64(size)), 3)
			gamma, voc := reduction.UMINSATFromUNSAT(cnf, size)
			d := reduction.CNFDB(gamma, voc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := newEngine(d)
				eng.UniqueMinimalModel()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §8)
// ---------------------------------------------------------------------------

// CEGAR vs full universal expansion for the Σ₂ᵖ oracle.
func BenchmarkAblationQBF(b *testing.B) {
	for _, size := range []int{4, 6, 8} {
		rng := rand.New(rand.NewSource(int64(size)))
		q := qbf.Random3DNF(rng, size, size, 2*size)
		b.Run(fmt.Sprintf("cegar/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qbf.SolveCEGAR(q, nil)
			}
		})
		b.Run(fmt.Sprintf("expand/size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qbf.SolveExpand(q)
			}
		})
	}
}

// CDCL vs plain DPLL on the pigeonhole family (the clause-learning
// ablation: DPLL degrades much faster).
func BenchmarkAblationSAT(b *testing.B) {
	for _, holes := range []int{4, 5, 6} {
		clauses, vars := pigeonCNF(holes)
		b.Run(fmt.Sprintf("cdcl/php%d", holes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.New(vars)
				for _, c := range clauses {
					s.AddClause(c...)
				}
				if s.Solve() != sat.Unsat {
					b.Fatal("PHP must be unsat")
				}
			}
		})
		b.Run(fmt.Sprintf("dpll/php%d", holes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if st, _ := sat.DPLL(vars, clauses, -1); st != sat.Unsat {
					b.Fatal("PHP must be unsat")
				}
			}
		})
	}
}

func pigeonCNF(n int) ([][]sat.Lit, int) {
	v := func(p, h int) int { return p*n + h }
	var out [][]sat.Lit
	for p := 0; p <= n; p++ {
		c := make([]sat.Lit, n)
		for h := 0; h < n; h++ {
			c[h] = sat.MkLit(v(p, h), true)
		}
		out = append(out, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				out = append(out, []sat.Lit{sat.MkLit(v(p1, h), false), sat.MkLit(v(p2, h), false)})
			}
		}
	}
	return out, (n + 1) * n
}

// Restart-policy ablation: Luby restarts on vs off, on random 3-CNF at
// the phase-transition ratio (where restarts matter most).
func BenchmarkAblationRestarts(b *testing.B) {
	for _, n := range []int{40, 60} {
		rng := rand.New(rand.NewSource(int64(n)))
		clauses := make([][]sat.Lit, int(4.26*float64(n)))
		for i := range clauses {
			c := make([]sat.Lit, 3)
			for j := range c {
				c[j] = sat.MkLit(rng.Intn(n), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		run := func(restarts bool) func(b *testing.B) {
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := sat.New(n)
					s.SetRestartsEnabled(restarts)
					for _, c := range clauses {
						s.AddClause(c...)
					}
					s.Solve()
				}
			}
		}
		b.Run(fmt.Sprintf("luby/n=%d", n), run(true))
		b.Run(fmt.Sprintf("none/n=%d", n), run(false))
	}
}
