// Quickstart: build a small disjunctive database, look at its minimal
// models, and compare what the different closed-world semantics are
// willing to infer from the same indefinite information.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"disjunct"
)

func main() {
	// A classic indefinite database: we know a bird is involved, and a
	// bird flies or is injured; a vet case arises when it both flies
	// and is injured.
	d := disjunct.MustParse(`
		bird.
		flies | injured :- bird.
		vet_case :- flies, injured.
	`)
	fmt.Println("Database:")
	fmt.Print(d)

	fmt.Println("\nMinimal models MM(DB):")
	disjunct.MinimalModels(d, 0, func(m disjunct.Interp) bool {
		fmt.Println(" ", m.String(d.Voc))
		return true
	})

	// Queries: does the bird fly? is it certainly NOT a vet case?
	queries := []string{"flies", "-flies", "flies | injured", "-vet_case", "-(flies & injured)"}
	semantics := []string{"GCWA", "EGCWA", "DDR", "PWS", "DSM"}

	fmt.Printf("\n%-22s", "query \\ semantics")
	for _, s := range semantics {
		fmt.Printf("%8s", s)
	}
	fmt.Println()
	for _, q := range queries {
		f := disjunct.MustParseFormula(q, d.Voc)
		fmt.Printf("%-22s", q)
		for _, name := range semantics {
			sem, ok := disjunct.NewSemantics(name, disjunct.Options{})
			if !ok {
				panic("unknown semantics " + name)
			}
			holds, err := sem.InferFormula(d, f)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%8v", holds)
		}
		fmt.Println()
	}

	fmt.Println(`
Reading the table:
  * no semantics concludes "flies" — the disjunction is genuinely open;
  * all infer the disjunction itself;
  * GCWA/EGCWA/DSM infer ¬vet_case (vet_case is false in every minimal
    model), while the weaker DDR and PWS do not — vet_case still
    "occurs" in the disjunctive fixpoint / in a possible world;
  * here GCWA also rules out flies ∧ injured, but only indirectly
    (through ¬vet_case). The pure GCWA/EGCWA split needs a bare
    disjunction:`)

	// EGCWA vs GCWA on a bare disjunction: EGCWA infers the integrity
	// clause ¬(a ∧ b) (true in both minimal models); GCWA, which only
	// adds literals, keeps the model {a, b}.
	d2 := disjunct.MustParse("a | b.")
	f2 := disjunct.MustParseFormula("-(a & b)", d2.Voc)
	for _, name := range []string{"GCWA", "EGCWA"} {
		sem, _ := disjunct.NewSemantics(name, disjunct.Options{})
		holds, _ := sem.InferFormula(d2, f2)
		fmt.Printf("  from {a | b}: %-5s ⊨ ¬(a ∧ b) : %v\n", name, holds)
	}
}
