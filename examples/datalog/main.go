// Datalog: the non-ground front end. The paper analyses propositional
// ("grounded") databases; real disjunctive deductive databases are
// written with variables and grounded first. This example writes the
// classic two-player game ("a position is winning if some move leads
// to a losing position") and a disjunctive scheduling toy, grounds
// them, and queries the result under the stable and closed-world
// semantics.
//
// Run with: go run ./examples/datalog
package main

import (
	"fmt"

	"disjunct"
)

func main() {
	// The win/lose game on a small DAG of positions. "win(X)" holds if
	// some move from X reaches a position that is not winning — the
	// textbook use of default negation (locally stratified here since
	// the move graph is acyclic).
	game := disjunct.MustParseProgram(`
		move(a, b).  move(b, c).  move(c, d).
		move(a, e).  move(e, d).
		win(X) :- move(X, Y), not win(Y).
	`)
	fmt.Printf("game grounding: %d atoms, %d clauses\n", game.N(), len(game.Clauses))

	dsm, _ := disjunct.NewSemantics("DSM", disjunct.Options{})
	fmt.Println("positions (d is terminal → losing):")
	for _, pos := range []string{"a", "b", "c", "d", "e"} {
		atomName := "win(" + pos + ")"
		a, ok := game.Voc.Lookup(atomName)
		if !ok {
			fmt.Printf("  %s: losing (no winning derivation exists at all)\n", pos)
			continue
		}
		won, err := dsm.InferLiteral(game, disjunct.PosLit(a))
		if err != nil {
			panic(err)
		}
		lost, _ := dsm.InferLiteral(game, disjunct.NegLit(a))
		state := "undetermined"
		if won {
			state = "WINNING"
		} else if lost {
			state = "losing"
		}
		fmt.Printf("  %s: %s\n", pos, state)
	}

	// Disjunctive scheduling: each task runs on one of two machines;
	// conflicting tasks may not share a machine.
	sched := disjunct.MustParseProgram(`
		task(t1). task(t2). task(t3).
		conflict(t1, t2).
		conflict(t2, t3).
		on_m1(X) | on_m2(X) :- task(X).
		:- conflict(X, Y), on_m1(X), on_m1(Y).
		:- conflict(X, Y), on_m2(X), on_m2(Y).
	`)
	fmt.Printf("\nscheduling grounding: %d atoms, %d clauses\n", sched.N(), len(sched.Clauses))
	count, err := dsm.Models(sched, 0, func(m disjunct.Interp) bool {
		fmt.Println("  schedule:", m.String(sched.Voc))
		return true
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("(%d feasible schedules)\n", count)

	// And a closed-world query: must t1 and t3 share a machine?
	f := disjunct.MustParseFormula(
		"(on_m1(t1) & on_m1(t3)) | (on_m2(t1) & on_m2(t3))", sched.Voc)
	holds, _ := dsm.InferFormula(sched, f)
	fmt.Printf("t1 and t3 always share a machine: %v\n", holds)
}
