// Stratified: a layered knowledge base with default negation under
// the stratification-based semantics of §4–5 of the paper — ICWA
// (iterated ECWA) and PERF (perfect models) — contrasted with DSM and
// the 3-valued PDSM on an unstratifiable variant.
//
// Run with: go run ./examples/stratified
package main

import (
	"fmt"

	"disjunct"
)

func main() {
	// A little zoo ontology. Layer 0: observed facts; layer 1:
	// classification by default; layer 2: behaviour defaults.
	d := disjunct.MustParse(`
		% layer 0: observations
		penguin | eagle.

		% layer 1: a penguin or an eagle is a bird; penguins are odd birds
		bird :- penguin.
		bird :- eagle.
		odd_bird :- penguin.

		% layer 2: birds fly unless known odd
		flies :- bird, not odd_bird.
		grounded :- bird, not flies.
	`)
	fmt.Println("Database:")
	fmt.Print(d)

	for _, name := range []string{"ICWA", "PERF", "DSM"} {
		sem, _ := disjunct.NewSemantics(name, disjunct.Options{})
		fmt.Printf("\n%s models:\n", name)
		if _, err := sem.Models(d, 0, func(m disjunct.Interp) bool {
			fmt.Println(" ", m.String(d.Voc))
			return true
		}); err != nil {
			fmt.Println("  error:", err)
			continue
		}
		for _, q := range []string{"flies | grounded", "flies & grounded", "penguin -> grounded"} {
			f := disjunct.MustParseFormula(q, d.Voc)
			holds, err := sem.InferFormula(d, f)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %s ⊨ %-20s : %v\n", name, q, holds)
		}
	}

	fmt.Println(`
All three stratification-respecting semantics agree here: in the
penguin world the bird is grounded, in the eagle world it flies, and
never both — the paper introduces ICWA exactly "for capturing PERF
under stratified negation", and stable models refine the same picture.`)

	// An unstratifiable database: ICWA refuses, PERF/DSM may lose
	// models, PDSM (3-valued) always has the well-founded fallback.
	u := disjunct.MustParse("a :- not b. b :- not a. p :- not p.")
	fmt.Println("\nUnstratifiable database:")
	fmt.Print(u)

	icwa, _ := disjunct.NewSemantics("ICWA", disjunct.Options{})
	if _, err := icwa.HasModel(u); err != nil {
		fmt.Println("ICWA:", err)
	}
	dsm, _ := disjunct.NewSemantics("DSM", disjunct.Options{})
	ok, _ := dsm.HasModel(u)
	fmt.Println("DSM has a (total) stable model:", ok)
	pdsm, _ := disjunct.NewSemantics("PDSM", disjunct.Options{})
	ok, _ = pdsm.HasModel(u)
	fmt.Println("PDSM has a partial stable model:", ok)
	fmt.Println("PDSM partial stable models (p must be undefined):")
	type partialLister interface {
		PartialModels(*disjunct.DB, int, func(disjunct.Partial) bool) (int, error)
	}
	if pl, ok := pdsm.(partialLister); ok {
		pl.PartialModels(u, 0, func(p disjunct.Partial) bool {
			fmt.Println(" ", p.String(u.Voc))
			return true
		})
	}
}
