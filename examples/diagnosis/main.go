// Diagnosis: model-based diagnosis of a small boolean circuit via
// circumscription (ECWA ≡ CIRC with a ⟨P;Q;Z⟩ partition) — the classic
// application the paper's CCWA/ECWA machinery was designed for.
//
// The circuit: two inverters in series, in → g1 → mid → g2 → out.
// With both gates healthy, two inversions give out = in; the observed
// in = 1, out = 0 is therefore inconsistent with a fully working
// circuit. Minimising the abnormality atoms (P = {ab1, ab2}) while
// letting the internal lines vary (Z) yields the minimal diagnoses.
//
// Run with: go run ./examples/diagnosis
package main

import (
	"fmt"

	"disjunct"
)

func main() {
	// Gate behaviour as clauses. A working inverter flips its input;
	// an abnormal gate is unconstrained. "not" here is default
	// negation compiled away by hand into the positive encoding with
	// complementary line atoms: lineX / lineX_low.
	//
	// Atoms:
	//   in_hi, mid_hi, mid_lo, out_hi, out_lo — line values
	//   ab1, ab2 — abnormality of the gates
	d := disjunct.MustParse(`
		% observations: input high, output LOW is the faulty case we probe
		in_hi.
		out_lo.

		% each line has some value
		mid_hi | mid_lo.
		out_hi | out_lo.

		% g1 (inverter): if normal, mid is the complement of in.
		% "normal" is encoded disjunctively: either the gate is abnormal
		% or its behaviour holds.
		ab1 | mid_lo :- in_hi.

		% g2 (inverter): if normal, out complements mid.
		ab2 | out_lo :- mid_hi.
		ab2 | out_hi :- mid_lo.

		% value exclusivity
		:- mid_hi, mid_lo.
		:- out_hi, out_lo.
	`)

	voc := d.Voc
	atom := func(name string) disjunct.Atom {
		a, ok := voc.Lookup(name)
		if !ok {
			panic("unknown atom " + name)
		}
		return a
	}

	// Circumscribe the abnormality atoms, vary the internal lines,
	// fix the observations.
	p := []disjunct.Atom{atom("ab1"), atom("ab2")}
	z := []disjunct.Atom{atom("mid_hi"), atom("mid_lo"), atom("out_hi")}
	part := disjunct.NewPartition(d.N(), p, z)

	circ, _ := disjunct.NewSemantics("CIRC", disjunct.Options{Partition: &part})

	fmt.Println("Circuit database:")
	fmt.Print(d)
	fmt.Println("\nMinimal diagnoses (models of CIRC, projected to ab1/ab2):")
	seen := map[string]bool{}
	if _, err := circ.Models(d, 0, func(m disjunct.Interp) bool {
		key := fmt.Sprintf("ab1=%v ab2=%v", m.Holds(atom("ab1")), m.Holds(atom("ab2")))
		if !seen[key] {
			seen[key] = true
			fmt.Println(" ", key, "   full model:", m.String(voc))
		}
		return true
	}); err != nil {
		panic(err)
	}

	// Diagnostic queries under circumscription.
	for _, q := range []string{"ab1 | ab2", "ab1 & ab2", "-(ab1 & ab2)", "ab1", "ab2"} {
		f := disjunct.MustParseFormula(q, voc)
		holds, err := circ.InferFormula(d, f)
		if err != nil {
			panic(err)
		}
		fmt.Printf("CIRC ⊨ %-14s : %v\n", q, holds)
	}

	fmt.Println(`
Interpretation: the observation (in=1, out=0) with two inverters in
series is explained by exactly one faulty gate — circumscription infers
"ab1 ∨ ab2" (some gate broke) and "¬(ab1 ∧ ab2)" (minimality: assuming
both broken is never necessary), but refuses to pin down which one.`)
}
