// Coloring: graph k-colouring under the disjunctive stable model
// semantics (DSM) — the workload family behind the NP-complete and
// Σ₂ᵖ-complete ∃MODEL cells of Table 2.
//
// Each vertex carries a disjunctive fact over its colour atoms;
// integrity clauses forbid doubled colours and monochromatic edges.
// The stable models are exactly the proper colourings.
//
// Run with: go run ./examples/coloring
package main

import (
	"fmt"
	"math/rand"

	"disjunct"
	"disjunct/internal/gen"
)

func main() {
	// A 5-cycle: 3-colourable (30 ways), not 2-colourable.
	c5 := gen.Cycle(5)

	for _, k := range []int{2, 3} {
		d := gen.ColoringDB(c5, k)
		dsm, _ := disjunct.NewSemantics("DSM", disjunct.Options{})
		ok, err := dsm.HasModel(d)
		if err != nil {
			panic(err)
		}
		fmt.Printf("C5 with %d colours: colourable = %v\n", k, ok)
		if !ok {
			continue
		}
		count, _ := dsm.Models(d, 0, func(disjunct.Interp) bool { return true })
		fmt.Printf("  proper %d-colourings: %d (closed form (k-1)^n + (-1)^n (k-1) = %d)\n",
			k, count, pow(k-1, 5)-(k-1))
		// Show a few.
		shown := 0
		dsm.Models(d, 3, func(m disjunct.Interp) bool {
			fmt.Printf("  e.g. %s\n", renderColoring(m, d, c5.N, k))
			shown++
			return true
		})
	}

	// Inference over all colourings: on an odd cycle no single vertex
	// has a forced colour, but "vertex 0 is coloured somehow" holds.
	d := gen.ColoringDB(c5, 3)
	dsm, _ := disjunct.NewSemantics("DSM", disjunct.Options{})
	some, _ := disjunct.ParseFormula("col_0_0 | col_0_1 | col_0_2", d.Voc)
	holds, _ := dsm.InferFormula(d, some)
	fmt.Printf("\nDSM ⊨ vertex 0 has a colour : %v\n", holds)
	first, _ := disjunct.ParseFormula("col_0_0", d.Voc)
	holds, _ = dsm.InferFormula(d, first)
	fmt.Printf("DSM ⊨ vertex 0 has colour 0 : %v (no colour is forced)\n", holds)

	// Random graphs straddling the 3-colourability threshold.
	rng := rand.New(rand.NewSource(7))
	fmt.Println()
	for _, p := range []float64{0.25, 0.45} {
		g := gen.RandomGraph(rng, 9, p)
		d3 := gen.ColoringDB(g, 3)
		ok, _ := dsm.HasModel(d3)
		fmt.Printf("random G(9, %.2f) with %d edges: 3-colourable = %v\n", p, len(g.Edges), ok)
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func renderColoring(m disjunct.Interp, d *disjunct.DB, n, k int) string {
	out := ""
	for v := 0; v < n; v++ {
		for c := 0; c < k; c++ {
			a, _ := d.Voc.Lookup(fmt.Sprintf("col_%d_%d", v, c))
			if m.Holds(a) {
				out += fmt.Sprintf("v%d=%d ", v, c)
			}
		}
	}
	return out
}
