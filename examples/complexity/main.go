// Complexity: watch the paper's Tables 1 and 2 happen live. This
// example runs the same query under several semantics while metering
// the instrumented oracle, showing the separation the paper proves:
//
//   - DDR/PWS negative-literal inference on a positive DDB: ZERO
//     oracle calls (the only tractable cells);
//   - GCWA literal inference: NP-oracle (SAT) calls — the Π₂ᵖ regime;
//   - GCWA formula inference via the Δ-log algorithm: O(log n) calls
//     to the Σ₂ᵖ oracle;
//   - model existence on a positive DDB: O(1), no oracle at all.
//
// Run with: go run ./examples/complexity
package main

import (
	"fmt"
	"math/rand"

	"disjunct"
	"disjunct/internal/core"
	"disjunct/internal/gen"
	"disjunct/internal/semantics/gcwa"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	d := gen.Random(rng, gen.Positive(24, 48))
	fmt.Printf("random positive DDB: %d atoms, %d clauses\n\n", d.N(), len(d.Clauses))
	x, _ := d.Voc.Lookup("p3")

	fmt.Println("literal inference of ¬p3:")
	for _, name := range []string{"DDR", "PWS", "GCWA", "EGCWA"} {
		o := disjunct.NewOracle()
		s, _ := disjunct.NewSemantics(name, disjunct.Options{Oracle: o})
		holds, err := s.InferLiteral(d, disjunct.NegLit(x))
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-6s ⊨ ¬p3 : %-5v  oracle: %s\n", name, holds, o.Counters())
	}

	fmt.Println("\nmodel existence (Table 1 column 3 — all O(1)):")
	for _, name := range []string{"GCWA", "DDR", "DSM", "PERF"} {
		o := disjunct.NewOracle()
		s, _ := disjunct.NewSemantics(name, disjunct.Options{Oracle: o})
		ok, _ := s.HasModel(d)
		fmt.Printf("  %-6s ∃model : %-5v  oracle: %s\n", name, ok, o.Counters())
	}

	fmt.Println("\nGCWA formula inference, direct vs Δ-log (P^Σ₂ᵖ[O(log n)]):")
	f := disjunct.MustParseFormula("p0 | -p1 | (p2 & -p3)", d.Voc)
	{
		o := disjunct.NewOracle()
		g := gcwa.New(core.Options{Oracle: o})
		holds, _ := g.InferFormula(d, f)
		fmt.Printf("  direct : %-5v  oracle: %s\n", holds, o.Counters())
	}
	{
		o := disjunct.NewOracle()
		g := gcwa.New(core.Options{Oracle: o})
		holds, _ := g.InferFormulaDeltaLog(d, f)
		c := o.Counters()
		fmt.Printf("  Δ-log  : %-5v  oracle: %s  (budget: ⌈log₂(%d+1)⌉+1 = %d Σ₂ᵖ calls)\n",
			holds, c, d.N(), ceilLog2(d.N()+1)+1)
	}

	fmt.Println(`
The Δ-log run pays more SAT calls inside its Σ₂ᵖ CEGAR queries, but
the *Σ₂ᵖ-oracle count* — the resource the complexity class P^Σ₂ᵖ[O(log n)]
measures — stays logarithmic in the number of atoms. That trade is
exactly what the GCWA/CCWA formula rows of Tables 1 and 2 assert.`)
}

func ceilLog2(x int) int {
	c, v := 0, 1
	for v < x {
		v *= 2
		c++
	}
	return c
}
