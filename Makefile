# disjunct — build/test/bench entry points.

GO ?= go
# Mirrored by ci.yml's STATICCHECK_VERSION — bump both together.
STATICCHECK_VERSION ?= 2023.1.7

.PHONY: all build test vet lint race bench report report-full soak chaos fuzz serve-smoke restart-smoke cluster-smoke churn-smoke clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting + vet + staticcheck (staticcheck fetched pinned, on demand).
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B target per table cell + ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation (quick sweeps).
report:
	$(GO) run ./cmd/ddbbench

# Report-scale sweeps + structural audit (exits nonzero on violation).
report-full:
	$(GO) run ./cmd/ddbbench -full

# Bounded differential soak (nightly CI runs 20k iterations).
soak:
	$(GO) run ./cmd/ddbsoak -iters 2000 -v

# Bounded chaos soak: budgets + deadline + seeded fault injection,
# plus a membership-churn sweep (seeded joins/drains/kills mid-load).
# Fails on silent corruption, untyped interruptions, or goroutine leaks.
chaos:
	$(GO) run ./cmd/ddbsoak -iters 1000 -faultrate 0.05 -deadline 2s -conflictbudget 200 -servefrac 0.3 -sessionfrac 0.3 -churnfrac 0.02 -v

# End-to-end service smoke: real binaries, offered load above the
# admission limit, 5% injected faults, SIGTERM drain. Fails on untyped
# outcomes, verdict divergence, goroutine leaks, or a dirty drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# Crash-recovery smoke of the persistent store: storeless reference
# recording, a store-backed server SIGKILLed mid-load, pre-warmed
# restart replaying identical verdicts. Also runs as the fourth pass
# of serve-smoke.
restart-smoke:
	sh scripts/restart_smoke.sh

# Sharded-cluster smoke: ddbrouter + three ddbserve workers, a SIGKILL
# of the warmest worker mid-load (>=95% failover completion enforced),
# a graceful drain with warm-state handoff, clean SIGTERMs.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Elastic-membership smoke: two replicated routers + three workers, a
# 4th worker warm-joined mid-load (zero cold compiles on its prewarmed
# slice), one router SIGKILLed under the client (>=95% completion
# enforced), a graceful worker drain, clean SIGTERMs.
churn-smoke:
	sh scripts/churn_smoke.sh

fuzz:
	$(GO) test -fuzz=FuzzParseDB -fuzztime=30s .
	$(GO) test -fuzz=FuzzParseFormula -fuzztime=30s .
	$(GO) test -fuzz=FuzzParseProgram -fuzztime=30s .
	$(GO) test -fuzz=FuzzStoreRecover -fuzztime=30s ./internal/store

clean:
	$(GO) clean ./...
