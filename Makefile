# disjunct — build/test/bench entry points.

GO ?= go

.PHONY: all build test vet race bench report report-full fuzz clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B target per table cell + ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation (quick sweeps).
report:
	$(GO) run ./cmd/ddbbench

# Report-scale sweeps + structural audit (exits nonzero on violation).
report-full:
	$(GO) run ./cmd/ddbbench -full

fuzz:
	$(GO) test -fuzz=FuzzParseDB -fuzztime=30s .
	$(GO) test -fuzz=FuzzParseFormula -fuzztime=30s .
	$(GO) test -fuzz=FuzzParseProgram -fuzztime=30s .

clean:
	$(GO) clean ./...
