#!/bin/sh
# smoke_lib.sh — shared helpers for the smoke scripts; source, do not run.
#
# The smoke scripts used to bind fixed ports (8097/8098) and flaked
# whenever a stale process or a parallel CI job held the port. They now
# start servers on 127.0.0.1:0 and learn the kernel-chosen port from
# the server's own "listening on http://HOST:PORT" startup log line,
# which both ddbserve and ddbrouter print after the listener binds.

# bound_url LOGFILE NAME — print the base URL the server bound, parsed
# from its startup log. Nonzero (with the log dumped to stderr) if the
# line never appears within ~10s.
bound_url() {
    bu_log=$1
    bu_name=$2
    bu_i=0
    while :; do
        bu_url=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$bu_log" 2>/dev/null | head -n 1)
        if [ -n "$bu_url" ]; then
            printf '%s\n' "$bu_url"
            return 0
        fi
        bu_i=$((bu_i + 1))
        if [ "$bu_i" -gt 50 ]; then
            echo "$bu_name: server never logged its bound address" >&2
            cat "$bu_log" >&2 2>/dev/null || true
            return 1
        fi
        sleep 0.2
    done
}

# wait_ready URL NAME LOGFILE [PID] — poll $URL/readyz until it
# answers 200. With a PID, a server that dies during the wait fails
# fast with the log tail instead of burning the full 10s timeout and
# dumping nothing useful. Nonzero (with the log dumped to stderr)
# after ~10s either way.
wait_ready() {
    wr_url=$1
    wr_name=$2
    wr_log=$3
    wr_pid=${4:-}
    wr_i=0
    until curl -sf "$wr_url/readyz" >/dev/null 2>&1; do
        if [ -n "$wr_pid" ] && ! kill -0 "$wr_pid" 2>/dev/null; then
            echo "$wr_name: server (pid $wr_pid) died before becoming ready; log tail:" >&2
            tail -n 20 "$wr_log" >&2 2>/dev/null || true
            return 1
        fi
        wr_i=$((wr_i + 1))
        if [ "$wr_i" -gt 50 ]; then
            echo "$wr_name: server never became ready" >&2
            cat "$wr_log" >&2
            return 1
        fi
        sleep 0.2
    done
}
