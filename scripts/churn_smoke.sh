#!/bin/sh
# churn_smoke.sh — end-to-end smoke of the elastic-membership contract,
# against the real binaries over real sockets: TWO replicated ddbrouters
# (one-sided gossip peering) fronting three ddbserve workers, with the
# member set changing under load.
#
# Phases:
#   1. a verified warmup load through the primary router — every hot DB
#      routes to its ring owner and warms that worker's sessions;
#   2. the churn storm over the same seeded workload, with client-side
#      router failover (ddbload -url R1,R2): a 4th worker warm-joins
#      mid-load via POST /v1/cluster/join on the REPLICA router, then
#      the primary router is SIGKILLed — the load must finish with zero
#      untyped and zero divergent outcomes and >= 95% completion
#      (ddbload -mincomplete);
#   3. the joined worker must have served its prewarmed keyspace slice
#      with ZERO cold compiles (its sessions were imported from the
#      donors before the ring flipped);
#   4. a graceful drain of one original worker through the surviving
#      router, then a final verified load on the churned cluster;
#   5. clean SIGTERM exits for the surviving router and workers.
#
# Everything binds 127.0.0.1:0; ports are parsed from the startup logs
# (smoke_lib.sh), so parallel runs never collide.
set -eu

. "$(dirname "$0")/smoke_lib.sh"

TMP="${TMPDIR:-/tmp}"
SERVE="$TMP/ddbserve-churn-smoke"
ROUTER="$TMP/ddbrouter-churn-smoke"
LOAD="$TMP/ddbload-churn-smoke"

go build -o "$SERVE" ./cmd/ddbserve
go build -o "$ROUTER" ./cmd/ddbrouter
go build -o "$LOAD" ./cmd/ddbload

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

# --- three workers -------------------------------------------------
WURLS=""
i=1
while [ "$i" -le 3 ]; do
    WLOG="$TMP/ddbserve-churn-w$i.log"
    : >"$WLOG"
    "$SERVE" -addr 127.0.0.1:0 -maxconcurrent 4 -queue 64 -sessions \
        -draintimeout 10s >"$WLOG" 2>&1 &
    WPID=$!
    eval "W${i}_PID=$WPID"
    PIDS="$PIDS $WPID"
    WURL=$(bound_url "$WLOG" "churn-smoke: worker $i")
    wait_ready "$WURL" "churn-smoke: worker $i" "$WLOG" "$WPID"
    eval "W${i}_URL=\$WURL"
    eval "W${i}_LOG=\$WLOG"
    WURLS="$WURLS,$WURL"
    i=$((i + 1))
done
WURLS="${WURLS#,}"

# --- two replicated routers ----------------------------------------
# The replica peers with the primary one-sidedly; push-pull gossip
# keeps both rings converged from either side.
R1LOG="$TMP/ddbrouter-churn-1.log"
: >"$R1LOG"
"$ROUTER" -addr 127.0.0.1:0 -workers "$WURLS" \
    -probeinterval 100ms -gossipinterval 100ms -failthreshold 2 -seed 7 >"$R1LOG" 2>&1 &
R1PID=$!
PIDS="$PIDS $R1PID"
R1URL=$(bound_url "$R1LOG" "churn-smoke: router 1")
wait_ready "$R1URL" "churn-smoke: router 1" "$R1LOG" "$R1PID"

R2LOG="$TMP/ddbrouter-churn-2.log"
: >"$R2LOG"
"$ROUTER" -addr 127.0.0.1:0 -workers "$WURLS" -peers "$R1URL" \
    -probeinterval 100ms -gossipinterval 100ms -failthreshold 2 -seed 8 >"$R2LOG" 2>&1 &
R2PID=$!
PIDS="$PIDS $R2PID"
R2URL=$(bound_url "$R2LOG" "churn-smoke: router 2")
wait_ready "$R2URL" "churn-smoke: router 2" "$R2LOG" "$R2PID"

# --- phase 1: verified warmup --------------------------------------
# The hot-DB pool this seed draws is the same pool the churn storm
# replays, so every key the joiner will own is warmed on a donor now.
"$LOAD" -url "$R1URL" -rate 400 -requests 200 -seed 21 -maxatoms 6 \
    -hotdbs 32 -deadline 10s -verify

# --- phase 2: churn storm ------------------------------------------
# A 4th worker comes up OUTSIDE the ring; mid-load it warm-joins via
# the replica router, and shortly after the primary router is
# SIGKILLed under the client.
W4_LOG="$TMP/ddbserve-churn-w4.log"
: >"$W4_LOG"
"$SERVE" -addr 127.0.0.1:0 -maxconcurrent 4 -queue 64 -sessions \
    -draintimeout 10s >"$W4_LOG" 2>&1 &
W4_PID=$!
PIDS="$PIDS $W4_PID"
W4_URL=$(bound_url "$W4_LOG" "churn-smoke: joiner")
wait_ready "$W4_URL" "churn-smoke: joiner" "$W4_LOG" "$W4_PID"

JOINOUT="$TMP/ddbrouter-churn-join.json"
(
    sleep 0.3
    curl -sf -X POST "$R2URL/v1/cluster/join?node=$W4_URL" >"$JOINOUT" || : >"$JOINOUT"
    sleep 0.3
    echo "churn-smoke: SIGKILLing router 1 mid-load"
    kill -KILL "$R1PID" 2>/dev/null || true
) &
CHURNER=$!
# Same seeded hot-DB workload, both routers offered to the client.
# ddbload enforces zero untyped, zero divergent, and the >=95%
# completion floor across the router kill.
"$LOAD" -url "$R1URL,$R2URL" -rate 400 -requests 400 -seed 21 -maxatoms 6 \
    -hotdbs 32 -deadline 10s -verify -mincomplete 0.95
wait "$CHURNER" 2>/dev/null || true
wait "$R1PID" 2>/dev/null || true

JOIN=$(cat "$JOINOUT")
echo "churn-smoke: join report: $JOIN"
echo "$JOIN" | grep -q '"state":"flipped"' || {
    echo "churn-smoke: warm join did not flip the ring" >&2
    cat "$R2LOG" >&2
    exit 1
}

# --- phase 3: zero cold compiles on the prewarmed slice ------------
HEALTH=$(curl -sf "$W4_URL/healthz")
COLD=$(echo "$HEALTH" | sed -n 's/.*"cold_compiles":\([0-9]*\).*/\1/p')
COMPILED=$(echo "$HEALTH" | sed -n 's/.*"compiled_entries":\([0-9]*\).*/\1/p')
echo "churn-smoke: joiner cold_compiles=${COLD:-?} compiled_entries=${COMPILED:-?}"
if [ "${COLD:-1}" -ne 0 ]; then
    echo "churn-smoke: joined worker ran cold compiles on its prewarmed slice:" >&2
    echo "$HEALTH" >&2
    exit 1
fi
if [ "${COMPILED:-0}" -eq 0 ]; then
    echo "churn-smoke: joined worker holds no imported compiled entries:" >&2
    echo "$HEALTH" >&2
    exit 1
fi

# --- phase 4: graceful drain + final verified load -----------------
DRAIN=$(curl -sf -X POST "$R2URL/v1/cluster/drain?node=$W1_URL")
echo "churn-smoke: drained worker 1: $DRAIN"
echo "$DRAIN" | grep -q '"artifacts":' || {
    echo "churn-smoke: drain response missing artifact count:" >&2
    echo "$DRAIN" >&2
    exit 1
}
kill -TERM "$W1_PID"
STATUS=0
wait "$W1_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "churn-smoke: drained worker exited with status $STATUS" >&2
    cat "$W1_LOG" >&2
    exit 1
fi
# The churned cluster (two originals + the joiner, one router) must
# still serve a clean verified load.
"$LOAD" -url "$R2URL" -rate 400 -requests 200 -seed 22 -maxatoms 6 \
    -hotdbs 32 -deadline 10s -verify

# --- phase 5: clean shutdowns --------------------------------------
kill -TERM "$R2PID"
STATUS=0
wait "$R2PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "churn-smoke: surviving router exited with status $STATUS" >&2
    cat "$R2LOG" >&2
    exit 1
fi
grep -q "ddbrouter: bye" "$R2LOG" || {
    echo "churn-smoke: surviving router log missing clean-shutdown marker" >&2
    cat "$R2LOG" >&2
    exit 1
}
for i in 2 3 4; do
    eval "SPID=\$W${i}_PID"
    eval "SLOG=\$W${i}_LOG"
    kill -TERM "$SPID"
    STATUS=0
    wait "$SPID" || STATUS=$?
    if [ "$STATUS" -ne 0 ]; then
        echo "churn-smoke: worker $i exited with status $STATUS" >&2
        cat "$SLOG" >&2
        exit 1
    fi
    grep -q "clean drain" "$SLOG" || {
        echo "churn-smoke: worker $i log missing clean-drain marker" >&2
        cat "$SLOG" >&2
        exit 1
    }
done
trap - EXIT

echo "churn-smoke: clean (warmup + warm-join + router-kill + drain + shutdown)"
