#!/bin/sh
# restart_smoke.sh — crash-recovery smoke of the persistent store,
# against the real binaries over real sockets.
#
# Three server lifetimes over one deterministic hot-DB workload:
#   1. a storeless session server records the reference verdicts (each
#      verified against a direct library call by ddbload -verify);
#   2. a store-backed server is SIGKILLed in the middle of the same
#      load — a crash with the append log possibly torn mid-record;
#   3. a server restarted on the same -store directory must recover
#      without errors, gate readiness on the prewarm, replay the
#      identical workload with every jointly-completed verdict equal
#      to the recorded storeless reference, hit the compiled-DB cache,
#      flush the store on a clean SIGTERM drain — and leave no temp
#      state behind.
#
# Each lifetime binds 127.0.0.1:0 and the bound port is parsed from
# its log (smoke_lib.sh), so the three passes — and parallel CI jobs —
# never collide on a fixed port.
set -eu

. "$(dirname "$0")/smoke_lib.sh"

TMP="${TMPDIR:-/tmp}"
STOREDIR="$TMP/ddbserve-restart-store.$$"
REF="$TMP/ddbload-restart-ref.$$.json"
SERVE="$TMP/ddbserve-restart-smoke"
LOAD="$TMP/ddbload-restart-smoke"

go build -o "$SERVE" ./cmd/ddbserve
go build -o "$LOAD" ./cmd/ddbload

rm -rf "$STOREDIR"
mkdir -p "$STOREDIR"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$STOREDIR" "$REF"
}
trap cleanup EXIT

WORKLOAD="-rate 200 -requests 240 -seed 55 -maxatoms 6 -hotdbs 6 -deadline 10s"

# --- pass 1: storeless reference recording -------------------------
ALOG="$TMP/ddbserve-restart-ref.log"
: >"$ALOG"
"$SERVE" -addr 127.0.0.1:0 -maxconcurrent 4 -queue 64 -sessions \
    -draintimeout 10s >"$ALOG" 2>&1 &
SRV=$!
URL=$(bound_url "$ALOG" "restart-smoke: reference")
wait_ready "$URL" "restart-smoke: reference" "$ALOG" "$SRV"
# shellcheck disable=SC2086
"$LOAD" -url "$URL" $WORKLOAD -verify -record "$REF"
kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
SRV=""
if [ "$STATUS" -ne 0 ]; then
    echo "restart-smoke: reference drain exited with status $STATUS" >&2
    cat "$ALOG" >&2
    exit 1
fi

# --- pass 2: store-backed server SIGKILLed mid-load ----------------
KLOG="$TMP/ddbserve-restart-kill.log"
: >"$KLOG"
"$SERVE" -addr 127.0.0.1:0 -maxconcurrent 4 -queue 64 \
    -store "$STOREDIR" -draintimeout 10s >"$KLOG" 2>&1 &
SRV=$!
URL=$(bound_url "$KLOG" "restart-smoke: victim")
wait_ready "$URL" "restart-smoke: victim" "$KLOG" "$SRV"
# The load runs in the background; the server dies under it, so the
# driver's transport errors are expected and ignored.
# shellcheck disable=SC2086
"$LOAD" -url "$URL" $WORKLOAD >/dev/null 2>&1 &
LOADPID=$!
sleep 0.6
kill -KILL "$SRV" 2>/dev/null || true
wait "$LOADPID" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true
SRV=""

# --- pass 3: restart on the same store directory -------------------
RLOG="$TMP/ddbserve-restart.log"
: >"$RLOG"
"$SERVE" -addr 127.0.0.1:0 -maxconcurrent 4 -queue 64 \
    -store "$STOREDIR" -draintimeout 10s >"$RLOG" 2>&1 &
SRV=$!
URL=$(bound_url "$RLOG" "restart-smoke: restart")
wait_ready "$URL" "restart-smoke: restart" "$RLOG" "$SRV"
if grep -q "store recovery error" "$RLOG"; then
    echo "restart-smoke: recovery error after SIGKILL:" >&2
    cat "$RLOG" >&2
    exit 1
fi
grep -q "store: recovered" "$RLOG" || {
    echo "restart-smoke: restarted server log missing recovery line" >&2
    cat "$RLOG" >&2
    exit 1
}
# Replay the identical workload: -verify pins every completed verdict
# to a direct library call, -replay pins it to the storeless reference
# recording; ddbload exits nonzero on any divergence or an empty
# comparison.
# shellcheck disable=SC2086
"$LOAD" -url "$URL" $WORKLOAD -verify -replay "$REF" -settle

HEALTH="$(curl -sf "$URL/healthz")"
if echo "$HEALTH" | grep -q '"compiled_hits":0'; then
    echo "restart-smoke: compiled-DB cache never hit after restart:" >&2
    echo "$HEALTH" >&2
    exit 1
fi
echo "$HEALTH" | grep -q '"store"' || {
    echo "restart-smoke: /healthz missing store section:" >&2
    echo "$HEALTH" >&2
    exit 1
}

kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
SRV=""
if [ "$STATUS" -ne 0 ]; then
    echo "restart-smoke: drain exited with status $STATUS" >&2
    cat "$RLOG" >&2
    exit 1
fi
grep -q "store flushed on drain" "$RLOG" || {
    echo "restart-smoke: drained server log missing store-flush marker" >&2
    cat "$RLOG" >&2
    exit 1
}
grep -q "clean drain" "$RLOG" || {
    echo "restart-smoke: drained server log missing clean-drain marker" >&2
    cat "$RLOG" >&2
    exit 1
}

echo "restart-smoke: clean (reference + SIGKILL recovery + pre-warmed replay)"
