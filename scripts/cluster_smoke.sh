#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of the sharded cluster's
# fault-tolerance contract, against the real binaries over real
# sockets: a ddbrouter fronting three ddbserve workers.
#
# Phases:
#   1. a verified warmup load through the router — every hot DB routes
#      to its ring owner and warms that worker's sessions;
#   2. a SIGKILL of the warmest worker at a fixed point mid-load over
#      the seeded workload — the load must still finish with zero
#      untyped and zero divergent outcomes, and the router must report
#      a failover-completion ratio >= 95% (ddbload -clustercheck);
#   3. a graceful drain of a surviving worker through the router —
#      its warm state hands off to the ring successor, and a final
#      verified load on the shrunk cluster must be clean;
#   4. clean SIGTERM exits for the router and every surviving worker.
#
# Everything binds 127.0.0.1:0; ports are parsed from the startup logs
# (smoke_lib.sh), so parallel runs never collide.
set -eu

. "$(dirname "$0")/smoke_lib.sh"

TMP="${TMPDIR:-/tmp}"
SERVE="$TMP/ddbserve-cluster-smoke"
ROUTER="$TMP/ddbrouter-cluster-smoke"
LOAD="$TMP/ddbload-cluster-smoke"

go build -o "$SERVE" ./cmd/ddbserve
go build -o "$ROUTER" ./cmd/ddbrouter
go build -o "$LOAD" ./cmd/ddbload

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

# --- three workers -------------------------------------------------
WURLS=""
i=1
while [ "$i" -le 3 ]; do
    WLOG="$TMP/ddbserve-cluster-w$i.log"
    : >"$WLOG"
    "$SERVE" -addr 127.0.0.1:0 -maxconcurrent 4 -queue 64 -sessions \
        -draintimeout 10s >"$WLOG" 2>&1 &
    WPID=$!
    eval "W${i}_PID=$WPID"
    PIDS="$PIDS $WPID"
    WURL=$(bound_url "$WLOG" "cluster-smoke: worker $i")
    wait_ready "$WURL" "cluster-smoke: worker $i" "$WLOG" "$WPID"
    eval "W${i}_URL=\$WURL"
    eval "W${i}_LOG=\$WLOG"
    WURLS="$WURLS,$WURL"
    i=$((i + 1))
done
WURLS="${WURLS#,}"

# --- the router ----------------------------------------------------
RLOG="$TMP/ddbrouter-cluster.log"
: >"$RLOG"
"$ROUTER" -addr 127.0.0.1:0 -workers "$WURLS" \
    -probeinterval 100ms -failthreshold 2 -seed 7 >"$RLOG" 2>&1 &
RPID=$!
PIDS="$PIDS $RPID"
RURL=$(bound_url "$RLOG" "cluster-smoke: router")
wait_ready "$RURL" "cluster-smoke: router" "$RLOG" "$RPID"

# --- phase 1: verified warmup --------------------------------------
"$LOAD" -url "$RURL" -rate 400 -requests 200 -seed 21 -maxatoms 6 \
    -hotdbs 6 -deadline 10s -verify

# --- phase 2: SIGKILL the warmest worker mid-load ------------------
# The warmest worker (most compiled DBs) provably owns hot keys, so
# killing it forces failovers the -clustercheck gate can measure.
VICTIM=1
BEST=-1
i=1
while [ "$i" -le 3 ]; do
    eval "WURL=\$W${i}_URL"
    N=$(curl -sf "$WURL/healthz" | sed -n 's/.*"compiled_entries":\([0-9]*\).*/\1/p')
    N="${N:-0}"
    if [ "$N" -gt "$BEST" ]; then
        BEST=$N
        VICTIM=$i
    fi
    i=$((i + 1))
done
eval "VPID=\$W${VICTIM}_PID"
echo "cluster-smoke: killing worker $VICTIM (compiled_entries=$BEST) mid-load"
(
    sleep 0.4
    kill -KILL "$VPID" 2>/dev/null || true
) &
KILLER=$!
# The same seeded hot-DB workload; the kill lands ~160 requests in.
# Zero untyped, zero divergent, and a >=95% failover-completion ratio
# (read from the router's healthz) are all enforced by ddbload.
"$LOAD" -url "$RURL" -rate 400 -requests 400 -seed 21 -maxatoms 6 \
    -hotdbs 6 -deadline 10s -verify -clustercheck -clustermin 0.95
wait "$KILLER" 2>/dev/null || true
wait "$VPID" 2>/dev/null || true

# --- phase 3: graceful drain with warm-state handoff ---------------
# Drain a surviving worker through the router: its sessions and
# verdicts must hand off to the ring successor before the ring flips.
DRAINEE=$((VICTIM % 3 + 1))
eval "DURL=\$W${DRAINEE}_URL"
eval "DPID=\$W${DRAINEE}_PID"
eval "DLOG=\$W${DRAINEE}_LOG"
DRAIN=$(curl -sf -X POST "$RURL/v1/cluster/drain?node=$DURL")
echo "cluster-smoke: drained worker $DRAINEE: $DRAIN"
echo "$DRAIN" | grep -q '"artifacts":' || {
    echo "cluster-smoke: drain response missing artifact count:" >&2
    echo "$DRAIN" >&2
    exit 1
}
kill -TERM "$DPID"
STATUS=0
wait "$DPID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "cluster-smoke: drained worker exited with status $STATUS" >&2
    cat "$DLOG" >&2
    exit 1
fi
grep -q "clean drain" "$DLOG" || {
    echo "cluster-smoke: drained worker log missing clean-drain marker" >&2
    cat "$DLOG" >&2
    exit 1
}
# The shrunk cluster (one worker left) must still serve a clean
# verified load.
"$LOAD" -url "$RURL" -rate 400 -requests 200 -seed 22 -maxatoms 6 \
    -hotdbs 6 -deadline 10s -verify

# --- phase 4: clean shutdowns --------------------------------------
kill -TERM "$RPID"
STATUS=0
wait "$RPID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "cluster-smoke: router exited with status $STATUS" >&2
    cat "$RLOG" >&2
    exit 1
fi
grep -q "ddbrouter: bye" "$RLOG" || {
    echo "cluster-smoke: router log missing clean-shutdown marker" >&2
    cat "$RLOG" >&2
    exit 1
}
SURVIVOR=$((6 - VICTIM - DRAINEE))
eval "SPID=\$W${SURVIVOR}_PID"
eval "SLOG=\$W${SURVIVOR}_LOG"
kill -TERM "$SPID"
STATUS=0
wait "$SPID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "cluster-smoke: surviving worker exited with status $STATUS" >&2
    cat "$SLOG" >&2
    exit 1
fi
grep -q "clean drain" "$SLOG" || {
    echo "cluster-smoke: surviving worker log missing clean-drain marker" >&2
    cat "$SLOG" >&2
    exit 1
}
trap - EXIT

echo "cluster-smoke: clean (warmup + kill-failover + drain-handoff + shutdown)"
