#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the inference service's
# robustness contract, against the real binaries over real sockets.
#
# Starts ddbserve with a deliberately tiny admission capacity and a 5%
# injected fault rate, drives it with ddbload far above the admission
# limit, and hard-fails on:
#   - any untyped outcome (a body outside the typed taxonomy),
#   - any served verdict that diverges from a direct library call,
#   - server goroutines that fail to settle back to baseline,
#   - a drain that doesn't exit cleanly on SIGTERM.
#
# Every server binds 127.0.0.1:0; the bound port is parsed from the
# server's startup log (smoke_lib.sh), so parallel runs never collide.
set -eu

. "$(dirname "$0")/smoke_lib.sh"

LOG="${TMPDIR:-/tmp}/ddbserve-smoke.log"

go build -o "${TMPDIR:-/tmp}/ddbserve-smoke" ./cmd/ddbserve
go build -o "${TMPDIR:-/tmp}/ddbload-smoke" ./cmd/ddbload

: >"$LOG"
"${TMPDIR:-/tmp}/ddbserve-smoke" \
    -addr 127.0.0.1:0 -maxconcurrent 2 -queue 4 \
    -faultrate 0.05 -faultseed 7 -retrymax 2 \
    -draintimeout 10s >"$LOG" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

URL=$(bound_url "$LOG" serve-smoke)
wait_ready "$URL" serve-smoke "$LOG" "$SRV"

# Offered load far above the admission limit (capacity 2+4), with
# verdict verification against direct library calls and a goroutine
# settle check. ddbload exits nonzero on any contract violation.
"${TMPDIR:-/tmp}/ddbload-smoke" \
    -url "$URL" -rate 1000 -requests 500 -seed 21 -maxatoms 6 \
    -deadline 10s -verify -settle

# Graceful drain: SIGTERM must produce a clean exit (status 0).
kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
    echo "serve-smoke: drain exited with status $STATUS" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "clean drain" "$LOG" || {
    echo "serve-smoke: server log missing clean-drain marker" >&2
    cat "$LOG" >&2
    exit 1
}

# --- session smoke -------------------------------------------------
# Second pass with the warm-session layer on and a repeat-DB workload:
# a fixed pool of 6 databases replayed with verdict verification. Every
# session-served, coalesced, or fast-path verdict must match the direct
# library call (ddbload exits nonzero on divergence), the session layer
# must actually engage, and no session may stay checked out afterwards.
SLOG="${TMPDIR:-/tmp}/ddbserve-session-smoke.log"
: >"$SLOG"
"${TMPDIR:-/tmp}/ddbserve-smoke" \
    -addr 127.0.0.1:0 -maxconcurrent 2 -queue 4 \
    -sessions -retrymax 2 \
    -draintimeout 10s >"$SLOG" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

URL=$(bound_url "$SLOG" session-smoke)
wait_ready "$URL" session-smoke "$SLOG" "$SRV"

"${TMPDIR:-/tmp}/ddbload-smoke" \
    -url "$URL" -rate 1000 -requests 500 -seed 33 -maxatoms 6 \
    -hotdbs 6 -deadline 10s -verify -settle

HEALTH="$(curl -sf "$URL/healthz")"
echo "$HEALTH" | grep -q '"active_checkouts":0' || {
    echo "session-smoke: session checkout leak (or missing section):" >&2
    echo "$HEALTH" >&2
    exit 1
}
if echo "$HEALTH" | grep -q '"compiled_hits":0'; then
    echo "session-smoke: compiled-DB cache never hit on a repeat-DB workload:" >&2
    echo "$HEALTH" >&2
    exit 1
fi

kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
    echo "session-smoke: drain exited with status $STATUS" >&2
    cat "$SLOG" >&2
    exit 1
fi
grep -q "clean drain" "$SLOG" || {
    echo "session-smoke: server log missing clean-drain marker" >&2
    cat "$SLOG" >&2
    exit 1
}
# --- batch + stream smoke ------------------------------------------
# Third pass: the amortized endpoints. A hot-DB workload replayed in
# /v1/batch chunks with verdict verification, eight NDJSON streams
# set-compared against direct library enumeration, then a deliberately
# long stream (a 20-atom disjunction: ~10^6 models) interrupted by
# SIGTERM — the stream must end with a typed terminal record and the
# server must still drain cleanly.
BLOG="${TMPDIR:-/tmp}/ddbserve-batch-smoke.log"
SOUT="${TMPDIR:-/tmp}/ddbserve-stream-smoke.ndjson"
: >"$BLOG"
"${TMPDIR:-/tmp}/ddbserve-smoke" \
    -addr 127.0.0.1:0 -maxconcurrent 2 -queue 4 \
    -sessions -retrymax 2 \
    -draintimeout 10s >"$BLOG" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

URL=$(bound_url "$BLOG" batch-smoke)
wait_ready "$URL" batch-smoke "$BLOG" "$SRV"

# Batch replay + stream verification; ddbload exits nonzero on any
# untyped or divergent outcome.
"${TMPDIR:-/tmp}/ddbload-smoke" \
    -url "$URL" -requests 160 -seed 44 -maxatoms 6 \
    -hotdbs 4 -batchsize 8 -streams 8 -deadline 10s -verify -settle

# Long stream cut by drain. The wide disjunction has ~2^20 models, so
# the enumeration is still running when SIGTERM lands.
WIDE="p0"
for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19; do
    WIDE="$WIDE | p$i"
done
: >"$SOUT"
curl -sN -X POST "$URL/v1/models/stream" \
    -H 'Content-Type: application/json' \
    -d "{\"db\":\"$WIDE.\",\"kind\":\"models\"}" >"$SOUT" &
CURL=$!
sleep 0.5

kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
    echo "batch-smoke: drain exited with status $STATUS" >&2
    cat "$BLOG" >&2
    exit 1
fi
grep -q "clean drain" "$BLOG" || {
    echo "batch-smoke: server log missing clean-drain marker" >&2
    cat "$BLOG" >&2
    exit 1
}
wait "$CURL" || true
grep -q '"model"' "$SOUT" || {
    echo "batch-smoke: interrupted stream emitted no model rows" >&2
    tail -2 "$SOUT" >&2
    exit 1
}
tail -1 "$SOUT" | grep -q '"done":true' || {
    echo "batch-smoke: interrupted stream missing terminal record" >&2
    tail -2 "$SOUT" >&2
    exit 1
}
tail -1 "$SOUT" | grep -q '"cause":"canceled"' || {
    echo "batch-smoke: interrupted stream terminal cause is not typed 'canceled'" >&2
    tail -1 "$SOUT" >&2
    exit 1
}

# --- restart smoke (crash recovery) --------------------------------
# Fourth pass: the persistent store's crash-recovery contract —
# storeless reference recording, a store-backed server SIGKILLed
# mid-load, and a pre-warmed restart replaying identical verdicts.
# Standalone so CI can also run it as its own job; skippable when the
# caller runs it separately.
if [ -z "${SERVE_SMOKE_SKIP_RESTART:-}" ]; then
    sh "$(dirname "$0")/restart_smoke.sh"
fi

echo "serve-smoke: clean (fresh + session + batch/stream + restart)"
