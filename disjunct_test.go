package disjunct_test

import (
	"fmt"
	"sort"
	"testing"

	"disjunct"
)

func TestSemanticsNamesComplete(t *testing.T) {
	want := []string{"CCWA", "CIRC", "CWA", "DDR", "DSM", "ECWA", "EGCWA", "GCWA", "ICWA", "PDSM", "PERF", "PMS", "PWS", "WGCWA"}
	got := disjunct.SemanticsNames()
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
}

func TestFacadeRoundTrip(t *testing.T) {
	d, err := disjunct.Parse("a | b. c :- a.")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := disjunct.NewSemantics("EGCWA", disjunct.Options{})
	if !ok {
		t.Fatal("EGCWA missing")
	}
	f, err := disjunct.ParseFormula("a | b", d.Voc)
	if err != nil {
		t.Fatal(err)
	}
	holds, err := s.InferFormula(d, f)
	if err != nil || !holds {
		t.Fatalf("a|b must be inferred: %v %v", holds, err)
	}
	count := disjunct.MinimalModels(d, 0, func(disjunct.Interp) bool { return true })
	if count != 2 {
		t.Fatalf("minimal models = %d, want 2", count)
	}
}

func TestSharedOracleAccumulates(t *testing.T) {
	o := disjunct.NewOracle()
	d := disjunct.MustParse("a | b. :- a, b.")
	s1, _ := disjunct.NewSemantics("GCWA", disjunct.Options{Oracle: o})
	s2, _ := disjunct.NewSemantics("EGCWA", disjunct.Options{Oracle: o})
	s1.HasModel(d)
	after1 := o.Counters().NPCalls
	s2.HasModel(d)
	after2 := o.Counters().NPCalls
	if after1 == 0 || after2 <= after1 {
		t.Fatalf("shared oracle not accumulating: %d %d", after1, after2)
	}
}

func TestPartitionAPI(t *testing.T) {
	d := disjunct.MustParse("a | b.")
	c := d.Voc.Intern("c")
	a, _ := d.Voc.Lookup("a")
	part := disjunct.NewPartition(d.N(), []disjunct.Atom{a}, []disjunct.Atom{c})
	s, _ := disjunct.NewSemantics("CIRC", disjunct.Options{Partition: &part})
	// Minimising only a (c varying, b fixed): a is false in some
	// (P;Z)-minimal models ({b},{b,c}) and true in others ({a},{a,c}),
	// so no literal conclusion about a is warranted.
	litA, err := s.InferLiteral(d, disjunct.NegLit(a))
	if err != nil {
		t.Fatal(err)
	}
	if litA {
		t.Fatalf("CIRC with P={a} must not infer ¬a from a|b (the model {a} is (P;Z)-minimal)")
	}
}

func TestUnknownSemantics(t *testing.T) {
	if _, ok := disjunct.NewSemantics("NOPE", disjunct.Options{}); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestErrSentinels(t *testing.T) {
	d := disjunct.MustParse("a :- not b. b :- not a.")
	s, _ := disjunct.NewSemantics("ICWA", disjunct.Options{})
	if _, err := s.HasModel(d); err != disjunct.ErrNotStratifiable {
		t.Fatalf("want ErrNotStratifiable, got %v", err)
	}
	d2 := disjunct.MustParse("a :- not b.")
	ddr, _ := disjunct.NewSemantics("DDR", disjunct.Options{})
	if _, err := ddr.HasModel(d2); err != disjunct.ErrUnsupported {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func Example() {
	d := disjunct.MustParse(`
		bird.
		flies | injured :- bird.
	`)
	s, _ := disjunct.NewSemantics("GCWA", disjunct.Options{})
	f := disjunct.MustParseFormula("flies | injured", d.Voc)
	holds, _ := s.InferFormula(d, f)
	fmt.Println("flies | injured:", holds)

	flies, _ := d.Voc.Lookup("flies")
	neg, _ := s.InferLiteral(d, disjunct.NegLit(flies))
	fmt.Println("-flies:", neg)
	// Output:
	// flies | injured: true
	// -flies: false
}

func ExampleNewSemantics_stableModels() {
	d := disjunct.MustParse("a :- not b. b :- not a.")
	dsm, _ := disjunct.NewSemantics("DSM", disjunct.Options{})
	var out []string
	n, _ := dsm.Models(d, 0, func(m disjunct.Interp) bool {
		out = append(out, m.String(d.Voc))
		return true
	})
	sort.Strings(out) // enumeration order is solver-dependent
	fmt.Println(out, "stable models:", n)
	// Output:
	// [{a} {b}] stable models: 2
}

func ExampleMinimalModels() {
	d := disjunct.MustParse("a | b.")
	var out []string
	disjunct.MinimalModels(d, 0, func(m disjunct.Interp) bool {
		out = append(out, m.String(d.Voc))
		return true
	})
	sort.Strings(out) // enumeration order is solver-dependent
	fmt.Println(out)
	// Output:
	// [{a} {b}]
}

func ExampleWellFounded() {
	d := disjunct.MustParse("a :- not b. p :- not p.")
	wf, ok := disjunct.WellFounded(d)
	fmt.Println(ok, wf.String(d.Voc))
	// Output:
	// true {a=true, p=undef}
}

func ExampleCheckModel() {
	d := disjunct.MustParse("a | b.")
	dsm, _ := disjunct.NewSemantics("DSM", disjunct.Options{})
	var first disjunct.Interp
	dsm.Models(d, 1, func(m disjunct.Interp) bool {
		first = m.Clone()
		return false
	})
	ok, _ := disjunct.CheckModel(dsm, d, first)
	fmt.Println("enumerated model passes CheckModel:", ok)
	// Output:
	// enumerated model passes CheckModel: true
}

func ExampleParseProgram() {
	d, _ := disjunct.ParseProgram(`
		edge(a,b). edge(b,c).
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
	`)
	gcwa, _ := disjunct.NewSemantics("GCWA", disjunct.Options{})
	f := disjunct.MustParseFormula("path(a,c)", d.Voc)
	holds, _ := gcwa.InferFormula(d, f)
	fmt.Println("path(a,c):", holds)
	// Output:
	// path(a,c): true
}
