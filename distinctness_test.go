package disjunct_test

// Distinctness: the ten semantics are genuinely different theories.
// For each pair known to differ, search random small databases for a
// witness (database, query) on which the two disagree — if none is
// found the two implementations might have collapsed into one.

import (
	"math/rand"
	"testing"

	"disjunct"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
)

func TestSemanticsPairwiseDistinct(t *testing.T) {
	type pair struct {
		a, b     string
		positive bool // restrict to positive DDBs (DDR/PWS classes)
		noIC     bool
	}
	pairs := []pair{
		{"GCWA", "EGCWA", true, true},
		{"GCWA", "DDR", true, true},
		{"DDR", "PWS", true, true},
		{"EGCWA", "PWS", true, true},
		{"GCWA", "CWA", true, true},
		{"DSM", "PDSM", false, true},
		{"DSM", "PERF", false, true},
	}
	rng := rand.New(rand.NewSource(311))
	for _, p := range pairs {
		sa, _ := disjunct.NewSemantics(p.a, disjunct.Options{})
		sb, _ := disjunct.NewSemantics(p.b, disjunct.Options{})
		found := false
		for iter := 0; iter < 4000 && !found; iter++ {
			n := 2 + rng.Intn(3)
			var d *disjunct.DB
			if p.positive {
				d = gen.Random(rng, gen.Positive(n, 1+rng.Intn(5)))
			} else {
				d = gen.Random(rng, gen.NormalNoIC(n, 1+rng.Intn(5)))
			}
			f := randomDistinctFormula(rng, n)
			ra, erra := sa.InferFormula(d, f)
			rb, errb := sb.InferFormula(d, f)
			if erra != nil || errb != nil {
				continue
			}
			if ra != rb {
				found = true
			}
		}
		if !found {
			t.Errorf("%s and %s never disagreed — implementations may have collapsed", p.a, p.b)
		}
	}
}

func randomDistinctFormula(rng *rand.Rand, n int) *disjunct.Formula {
	var rec func(depth int) *disjunct.Formula
	rec = func(depth int) *disjunct.Formula {
		if depth == 0 || rng.Intn(3) == 0 {
			a := disjunct.Atom(rng.Intn(n))
			if rng.Intn(2) == 0 {
				return logic.Not(logic.AtomF(a))
			}
			return logic.AtomF(a)
		}
		l, r := rec(depth-1), rec(depth-1)
		if rng.Intn(2) == 0 {
			return logic.And(l, r)
		}
		return logic.Or(l, r)
	}
	return rec(2)
}

// The equivalences the paper asserts, conversely, must NEVER disagree.
func TestSemanticsEquivalencesHold(t *testing.T) {
	pairs := [][2]string{{"DDR", "WGCWA"}, {"PWS", "PMS"}, {"ECWA", "CIRC"}}
	rng := rand.New(rand.NewSource(312))
	for _, p := range pairs {
		sa, _ := disjunct.NewSemantics(p[0], disjunct.Options{})
		sb, _ := disjunct.NewSemantics(p[1], disjunct.Options{})
		for iter := 0; iter < 300; iter++ {
			n := 2 + rng.Intn(3)
			d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
			f := randomDistinctFormula(rng, n)
			ra, erra := sa.InferFormula(d, f)
			rb, errb := sb.InferFormula(d, f)
			if (erra == nil) != (errb == nil) || ra != rb {
				t.Fatalf("%s vs %s disagreed (%v/%v, %v/%v)\n%s",
					p[0], p[1], ra, erra, rb, errb, d.String())
			}
		}
	}
}

// Inference-strength laws induced by the model-set inclusions (on
// positive DDBs without integrity clauses):
//
//	MM ⊆ PWS-models ⊆ M(DB)  and  GCWA-models ⊆ DDR-models
//
// so PWS inference implies EGCWA inference, and DDR inference implies
// GCWA inference.
func TestInferenceStrengthLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	pws, _ := disjunct.NewSemantics("PWS", disjunct.Options{})
	egcwa, _ := disjunct.NewSemantics("EGCWA", disjunct.Options{})
	ddr, _ := disjunct.NewSemantics("DDR", disjunct.Options{})
	gcwa, _ := disjunct.NewSemantics("GCWA", disjunct.Options{})
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(3)
		d := gen.Random(rng, gen.Positive(n, 1+rng.Intn(5)))
		f := randomDistinctFormula(rng, n)
		if pwsHolds, _ := pws.InferFormula(d, f); pwsHolds {
			if eg, _ := egcwa.InferFormula(d, f); !eg {
				t.Fatalf("iter %d: PWS infers but EGCWA does not\n%sF: %s",
					iter, d.String(), f.String(d.Voc))
			}
		}
		if ddrHolds, _ := ddr.InferFormula(d, f); ddrHolds {
			if g, _ := gcwa.InferFormula(d, f); !g {
				t.Fatalf("iter %d: DDR infers but GCWA does not\n%sF: %s",
					iter, d.String(), f.String(d.Voc))
			}
		}
	}
}
