module disjunct

go 1.22
