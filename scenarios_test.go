package disjunct_test

// Scenario regressions: classic knowledge-representation examples from
// the disjunctive-database literature, each pinned with the verdicts
// of several semantics. These serve as documentation ("what does each
// semantics DO?") and as end-to-end regressions over the facade.

import (
	"testing"

	"disjunct"
)

type verdict struct {
	sem   string
	query string // formula syntax; literal queries written as formulas
	want  bool
}

type scenario struct {
	name     string
	db       string
	datalog  bool
	verdicts []verdict
}

var scenarios = []scenario{
	{
		name: "minker-indefinite-disjunction",
		db:   "a | b.",
		verdicts: []verdict{
			{"GCWA", "-a", false},       // a open
			{"GCWA", "-(a & b)", false}, // GCWA adds literals only
			{"EGCWA", "-(a & b)", true}, // minimal models kill a∧b
			{"DDR", "-a", false},        // a occurs
			{"PWS", "a | b", true},      // every possible world has one
			{"DSM", "-(a & b)", true},   // stable = minimal here
			{"CWA", "a", true},          // CWA(a∨b) inconsistent → everything
			{"CWA", "-a", true},         // (both follow vacuously)
		},
	},
	{
		name: "chan-example-3-1",
		db:   "a | b. :- a, b. c :- a, b.",
		verdicts: []verdict{
			{"DDR", "-c", false}, // the fixpoint ignores the denial
			{"PWS", "-c", true},  // possible worlds respect it
			{"GCWA", "-c", true},
			{"EGCWA", "-c", true},
		},
	},
	{
		name: "exclusive-vs-inclusive-disjunction",
		db:   "a | b. c :- a, b.",
		verdicts: []verdict{
			// {a,b,c} is a PWS world but not a minimal model:
			{"PWS", "-c | (a & b)", true},
			{"DDR", "-c | (a & b)", false}, // DDR keeps {a,c} etc.
			{"EGCWA", "-c", true},
			{"GCWA", "-c", true},
		},
	},
	{
		name: "default-with-exception",
		db: `bird. penguin | sparrow :- bird.
		     flies :- bird, not abnormal.
		     abnormal :- penguin.`,
		verdicts: []verdict{
			// Stable models: {bird,penguin,abnormal} and
			// {bird,sparrow,flies}.
			{"DSM", "flies | abnormal", true},
			{"DSM", "flies & abnormal", false},
			{"DSM", "penguin -> abnormal", true},
			{"PERF", "penguin -> abnormal", true},
			{"ICWA", "sparrow -> flies", true},
		},
	},
	{
		name: "even-loop-choice",
		db:   "a :- not b. b :- not a. p :- a. p :- b.",
		verdicts: []verdict{
			{"DSM", "p", true},   // p holds in both stable models
			{"DSM", "a", false},  // but neither choice is forced
			{"PDSM", "p", false}, // the well-founded PSM leaves p undefined
			{"PDSM", "a | -a", false},
		},
	},
	{
		name:    "datalog-reachability",
		datalog: true,
		db: `edge(a,b). edge(b,c). edge(d,d).
		     reach(X) :- source(X).
		     source(a).
		     reach(Y) :- reach(X), edge(X,Y).`,
		verdicts: []verdict{
			{"GCWA", "reach(c)", true},
			{"GCWA", "-reach(d)", true},
			{"DSM", "reach(b)", true},
		},
	},
	{
		name:    "datalog-disjunctive-assignment",
		datalog: true,
		db: `item(i1). item(i2).
		     left(X) | right(X) :- item(X).
		     :- left(i1), left(i2).`,
		verdicts: []verdict{
			{"DSM", "left(i1) -> right(i2)", true},
			{"DSM", "left(i1)", false},
			{"EGCWA", "-(left(i1) & left(i2))", true},
		},
	},
	{
		name: "denial-prunes-worlds",
		db:   "a | b | c. :- a. ",
		verdicts: []verdict{
			{"GCWA", "-a", true},
			{"GCWA", "b | c", true},
			{"EGCWA", "-(b & c)", true},
			{"DDR", "-a", true}, // the model set respects the denial
		},
	},
}

func TestScenarios(t *testing.T) {
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var d *disjunct.DB
			var err error
			if sc.datalog {
				d, err = disjunct.ParseProgram(sc.db)
			} else {
				d, err = disjunct.Parse(sc.db)
			}
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, v := range sc.verdicts {
				sem, ok := disjunct.NewSemantics(v.sem, disjunct.Options{})
				if !ok {
					t.Fatalf("unknown semantics %s", v.sem)
				}
				f, err := disjunct.ParseFormula(v.query, d.Voc)
				if err != nil {
					t.Fatalf("query %q: %v", v.query, err)
				}
				got, err := sem.InferFormula(d, f)
				if err != nil {
					t.Fatalf("%s ⊨ %q: %v", v.sem, v.query, err)
				}
				if got != v.want {
					t.Errorf("%s ⊨ %q = %v, want %v", v.sem, v.query, got, v.want)
				}
			}
		})
	}
}
