// Package disjunct is a library for reasoning over propositional
// disjunctive databases under the ten closed-world semantics analysed
// in Eiter & Gottlob, "Complexity Aspects of Various Semantics for
// Disjunctive Databases" (PODS 1993) — GCWA, CCWA, EGCWA, ECWA/CIRC,
// DDR/WGCWA, PWS/PMS, ICWA, PERF, DSM and PDSM — plus Reiter's
// original CWA, which the paper discusses as the baseline the
// disjunctive semantics repair.
//
// The package is a facade over the internal implementation. Quick
// start:
//
//	d := disjunct.MustParse("bird. flies | injured :- bird.")
//	s, _ := disjunct.NewSemantics("GCWA", disjunct.Options{})
//	f := disjunct.MustParseFormula("flies | injured", d.Voc)
//	holds, _ := s.InferFormula(d, f)
//
// Databases are finite sets of clauses
//
//	a1 | … | an :- b1, …, bk, not c1, …, not cm.
//
// over a propositional vocabulary; clauses with an empty head are
// integrity clauses (denials). Every semantics answers the paper's
// three decision problems — InferLiteral, InferFormula, HasModel — and
// enumerates its model set via Models. All NP-oracle (SAT) and
// Σ₂ᵖ-oracle usage is metered on the Oracle carried by Options, which
// is how the benchmark harness exhibits each complexity-table cell.
package disjunct

import (
	"context"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/faults"
	"disjunct/internal/ground"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/strat"
	"disjunct/internal/wfs"

	// Register every semantics with the core registry.
	_ "disjunct/internal/semantics/ccwa"
	_ "disjunct/internal/semantics/cwa"
	_ "disjunct/internal/semantics/ddr"
	_ "disjunct/internal/semantics/dsm"
	_ "disjunct/internal/semantics/ecwa"
	_ "disjunct/internal/semantics/egcwa"
	_ "disjunct/internal/semantics/gcwa"
	_ "disjunct/internal/semantics/icwa"
	_ "disjunct/internal/semantics/pdsm"
	_ "disjunct/internal/semantics/perf"
	_ "disjunct/internal/semantics/pws"
)

// Core data types, re-exported from the implementation packages.
type (
	// DB is a propositional disjunctive database.
	DB = db.DB
	// Clause is a single database clause (head, positive body,
	// negative body).
	Clause = db.Clause
	// Atom is a propositional variable index.
	Atom = logic.Atom
	// Lit is a positive or negated atom.
	Lit = logic.Lit
	// Formula is a propositional formula over a database vocabulary.
	Formula = logic.Formula
	// Vocabulary maps atom names to indices.
	Vocabulary = logic.Vocabulary
	// Interp is a two-valued interpretation (set of true atoms).
	Interp = logic.Interp
	// Partial is a 3-valued interpretation (PDSM).
	Partial = logic.Partial
	// Semantics is a disjunctive database semantics: the paper's three
	// decision problems plus model enumeration.
	Semantics = core.Semantics
	// Options configures a semantics (partition, shared oracle).
	Options = core.Options
	// Partition is a ⟨P;Q;Z⟩ vocabulary partition for CCWA/ECWA/ICWA.
	Partition = models.Partition
	// Oracle is the instrumented NP/Σ₂ᵖ oracle.
	Oracle = oracle.NP
	// OracleCounters reports oracle usage.
	OracleCounters = oracle.Counters
)

// Shared sentinel errors.
var (
	// ErrUnsupported marks a database outside the class a semantics is
	// defined for.
	ErrUnsupported = core.ErrUnsupported
	// ErrNotStratifiable marks a non-stratifiable database given to
	// ICWA.
	ErrNotStratifiable = core.ErrNotStratifiable
)

// Parse reads a database in the textual clause syntax; see the
// package documentation for the grammar.
func Parse(input string) (*DB, error) { return db.Parse(input) }

// MustParse is Parse panicking on error (examples, tests).
func MustParse(input string) *DB {
	d, err := db.Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}

// NewDB returns an empty database over a fresh vocabulary.
func NewDB() *DB { return db.New() }

// ParseFormula parses a propositional query formula against a
// database's vocabulary.
func ParseFormula(input string, voc *Vocabulary) (*Formula, error) {
	return logic.ParseFormula(input, voc)
}

// MustParseFormula is ParseFormula panicking on error.
func MustParseFormula(input string, voc *Vocabulary) *Formula {
	return logic.MustParseFormula(input, voc)
}

// NewSemantics instantiates a semantics by its paper abbreviation:
// "GCWA", "CCWA", "EGCWA", "ECWA", "CIRC", "DDR", "WGCWA", "PWS",
// "PMS", "ICWA", "PERF", "DSM", "PDSM", plus Reiter's baseline "CWA".
// The boolean reports whether the name is known.
func NewSemantics(name string, opts Options) (Semantics, bool) {
	return core.New(name, opts)
}

// SemanticsNames returns the registered semantics names.
func SemanticsNames() []string { return core.Names() }

// NewOracle returns a fresh instrumented oracle, for sharing across
// semantics instances and reading usage counters.
func NewOracle() *Oracle { return oracle.NewNP() }

// NewPartition builds a ⟨P;Q;Z⟩ partition over n atoms from the
// minimised (P) and varying (Z) atom lists; unlisted atoms are fixed
// (Q).
func NewPartition(n int, p, z []Atom) Partition {
	return models.NewPartition(n, p, z)
}

// PosLit returns the positive literal of a.
func PosLit(a Atom) Lit { return logic.PosLit(a) }

// NegLit returns the negated literal of a.
func NegLit(a Atom) Lit { return logic.NegLit(a) }

// MinimalModels enumerates the minimal models MM(DB) — the common
// substrate of the closed-world semantics — invoking yield for each.
// limit ≤ 0 means unlimited; the count is returned.
func MinimalModels(d *DB, limit int, yield func(Interp) bool) int {
	return models.NewEngine(d, nil).MinimalModels(limit, yield)
}

// UniqueMinimalModel decides UMINSAT for the database (Proposition 5.4
// of the paper): does DB have exactly one minimal model? When it does,
// that model is returned.
func UniqueMinimalModel(d *DB) (bool, Interp) {
	return models.NewEngine(d, nil).UniqueMinimalModel()
}

// CredulousFormula reports whether SOME model of the semantics
// satisfies f (brave inference), the companion of the tables' cautious
// InferFormula.
func CredulousFormula(s Semantics, d *DB, f *Formula) (bool, error) {
	return core.CredulousFormula(s, d, f)
}

// CredulousLiteral reports whether some model of the semantics
// satisfies l.
func CredulousLiteral(s Semantics, d *DB, l Lit) (bool, error) {
	return core.CredulousLiteral(s, d, l)
}

// ParseProgram parses a non-ground (datalog-with-disjunction) program
// and grounds it over its active domain, returning the propositional
// database every semantics operates on. Ground atom names follow the
// "pred(c1,c2)" convention in the vocabulary.
func ParseProgram(input string) (*DB, error) {
	prog, err := ground.ParseProgram(input)
	if err != nil {
		return nil, err
	}
	return prog.Ground()
}

// MustParseProgram is ParseProgram panicking on error.
func MustParseProgram(input string) *DB {
	d, err := ParseProgram(input)
	if err != nil {
		panic(err)
	}
	return d
}

// CheckModel decides the model-checking problem m ∈ SEM(DB). Every
// bundled semantics implements a dedicated checker (polynomial for
// DDR/PWS, one NP-oracle call for the minimality/stability/perfection
// based semantics).
func CheckModel(s Semantics, d *DB, m Interp) (bool, error) {
	return core.CheckModel(s, d, m)
}

// WellFounded computes the well-founded partial model of a normal
// (non-disjunctive) logic program — the polynomial semantics PDSM
// generalises. ok is false when d is not a normal program.
func WellFounded(d *DB) (Partial, bool) {
	if !wfs.IsNormal(d) {
		return Partial{}, false
	}
	return wfs.Compute(d), true
}

// Classify returns the database's class in the paper's hierarchy:
// positive DDB ⊂ DDDB ⊂ DSDB ⊂ DNDB ("DSDB" requires stratifiability).
func Classify(d *DB) string {
	return strat.Classify(d).String()
}

// Budgeted, cancellable inference. A Budget is attached to an oracle
// (Oracle.WithBudget); every solver on that oracle polls it and every
// NP call charges it, so any inference running on the oracle either
// completes — with a verdict identical to the unbudgeted run — or
// returns one of the typed interruption errors below. See the README
// "Robustness & budgets" section.
type (
	// Budget carries a context, a deadline, and resource limits
	// (conflicts, propagations, NP calls) shared by every solver of an
	// oracle. The zero value and nil are both "unlimited".
	Budget = budget.B
	// BudgetLimits configures a Budget.
	BudgetLimits = budget.Limits
	// Verdict is the three-valued outcome of a budgeted query: true,
	// false, or incomplete (unknown-out-of-budget) with a typed cause.
	Verdict = core.Verdict
	// FaultInjector deterministically injects latency, transient solver
	// failures, and spurious cancellations into an oracle
	// (Oracle.WithFaults) for chaos testing.
	FaultInjector = faults.Injector
)

// Typed interruption causes; match with errors.Is.
var (
	// ErrCanceled: the budget's context was canceled (or a fault
	// injector fired a spurious cancellation).
	ErrCanceled = budget.ErrCanceled
	// ErrDeadline: the wall-clock deadline passed.
	ErrDeadline = budget.ErrDeadline
	// ErrConflictBudget: the solver-conflict budget ran out.
	ErrConflictBudget = budget.ErrConflictBudget
	// ErrPropagationBudget: the unit-propagation budget ran out.
	ErrPropagationBudget = budget.ErrPropagationBudget
	// ErrNPCallBudget: the NP-oracle-call budget ran out.
	ErrNPCallBudget = budget.ErrNPCallBudget
)

// NewBudget builds a Budget from a context and limits; zero/absent
// fields are unlimited. Attach it with Oracle.WithBudget.
func NewBudget(ctx context.Context, lim BudgetLimits) *Budget {
	return budget.New(ctx, lim)
}

// NewFaultInjector builds a deterministic fault injector firing on
// roughly rate·100% of oracle calls, seeded for reproducibility; nil
// (no faults) when rate ≤ 0. Attach it with Oracle.WithFaults.
func NewFaultInjector(rate float64, seed int64) *FaultInjector {
	return faults.NewInjector(rate, seed)
}

// Interrupted reports whether err is one of the typed interruption
// causes (possibly wrapped) — i.e. whether a query was cut short by
// budget/cancellation rather than failing semantically.
func Interrupted(err error) bool { return budget.Interrupted(err) }

// VerdictOf folds an inference result into a three-valued Verdict:
// interruption errors become Incomplete verdicts, other errors are
// returned unchanged.
func VerdictOf(holds bool, err error) (Verdict, error) {
	return core.VerdictOf(holds, err)
}
