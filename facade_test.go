package disjunct_test

import (
	"testing"

	"disjunct"
	"disjunct/internal/logic"
)

func TestUniqueMinimalModelFacade(t *testing.T) {
	d := disjunct.MustParse("a. b :- a.")
	ok, m := disjunct.UniqueMinimalModel(d)
	if !ok {
		t.Fatalf("Horn DB must have a unique minimal model")
	}
	if m.String(d.Voc) != "{a, b}" {
		t.Fatalf("unique minimal model = %s", m.String(d.Voc))
	}
	if ok, _ := disjunct.UniqueMinimalModel(disjunct.MustParse("a | b.")); ok {
		t.Fatalf("a|b has two minimal models")
	}
}

func TestWellFoundedFacade(t *testing.T) {
	d := disjunct.MustParse("a :- not b.")
	p, ok := disjunct.WellFounded(d)
	if !ok {
		t.Fatalf("NLP rejected")
	}
	a, _ := d.Voc.Lookup("a")
	if !p.IsTotal() || !p.Total().Holds(a) {
		t.Fatalf("well-founded model wrong: %s", p.String(d.Voc))
	}
	if _, ok := disjunct.WellFounded(disjunct.MustParse("a | b.")); ok {
		t.Fatalf("disjunctive DB must be rejected by WellFounded")
	}
}

func TestCredulousFacade(t *testing.T) {
	d := disjunct.MustParse("a | b.")
	s, _ := disjunct.NewSemantics("EGCWA", disjunct.Options{})
	a, _ := d.Voc.Lookup("a")
	cred, err := disjunct.CredulousLiteral(s, d, disjunct.PosLit(a))
	if err != nil || !cred {
		t.Fatalf("a credulously holds in some minimal model: %v %v", cred, err)
	}
	f := disjunct.MustParseFormula("a & b", d.Voc)
	cred, _ = disjunct.CredulousFormula(s, d, f)
	if cred {
		t.Fatalf("a∧b holds in no minimal model")
	}
}

func TestCheckModelFacade(t *testing.T) {
	d := disjunct.MustParse("a | b.")
	s, _ := disjunct.NewSemantics("EGCWA", disjunct.Options{})
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")

	if ok, _ := disjunct.CheckModel(s, d, logic.InterpOf(d.N(), a)); !ok {
		t.Fatalf("{a} is a minimal model")
	}
	if ok, _ := disjunct.CheckModel(s, d, logic.InterpOf(d.N(), a, b)); ok {
		t.Fatalf("{a,b} is not minimal")
	}
}

func TestParseProgramErrors(t *testing.T) {
	for _, bad := range []string{
		"p(X).",          // unsafe
		"p(a",            // syntax
		"p(a). p(a, b).", // arity clash
	} {
		if _, err := disjunct.ParseProgram(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParseProgram must panic on bad input")
		}
	}()
	disjunct.MustParseProgram("p(X).")
}

func TestDDRAndPWSNamesResolve(t *testing.T) {
	for _, pair := range [][2]string{{"DDR", "WGCWA"}, {"PWS", "PMS"}, {"ECWA", "CIRC"}} {
		a, _ := disjunct.NewSemantics(pair[0], disjunct.Options{})
		b, _ := disjunct.NewSemantics(pair[1], disjunct.Options{})
		d := disjunct.MustParse("a | b. c :- a, b.")
		f := disjunct.MustParseFormula("-c", d.Voc)
		ra, _ := a.InferFormula(d, f)
		rb, _ := b.InferFormula(d, f)
		if ra != rb {
			t.Fatalf("%s and %s disagree — they must be the same semantics", pair[0], pair[1])
		}
	}
}
